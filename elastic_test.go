package ca3dmm

import (
	"errors"
	"testing"
	"time"

	"repro/internal/mpi"
)

// Chaos suite for the elastic-recovery ladder: hot-spare replacement,
// partition-heal rejoin, and the typed degradation rungs. Same
// contract as resilience_test.go — verified C or typed error, never a
// hang — plus the elastic guarantees: while spares remain a crash is
// recovered at the ORIGINAL process count with the ORIGINAL grid.

// traceEventCount returns how many instant events named name the
// recorder saw across the whole run.
func traceEventCount(tr *TraceRecorder, name string) int {
	for _, ec := range tr.BuildReport().Events {
		if ec.Name == name {
			return ec.Count
		}
	}
	return 0
}

// elasticTotals folds the per-rank elastic counters of a report.
func elasticTotals(rep *mpi.Report) (promotions, released, rejoins, clears, confirms int64) {
	for i := range rep.Ranks {
		promotions += rep.Ranks[i].Promotions
		released += rep.Ranks[i].CkptReleased
		rejoins += rep.Ranks[i].Net.Rejoins
		clears += rep.Ranks[i].Net.Clears
		confirms += rep.Ranks[i].Net.Confirms
	}
	return
}

// TestResilientCrashWithSparesBitIdentical is the tentpole acceptance
// scenario: with a reserved spare pool, one crash must be recovered by
// Replace — same process count, same grid, no replan — and the
// recovered C must be bit-identical to the fault-free run, because the
// replace rung restores the original panels and reruns the original
// schedule.
func TestResilientCrashWithSparesBitIdentical(t *testing.T) {
	const p = 8
	a := Random(chaosM, chaosK, 41)
	b := Random(chaosK, chaosN, 42)
	runGuarded(t, "replace-bit-identical", func() {
		base := chaosConfig(nil, 11)
		base.SpareRanks = 2
		clean, _, err := ResilientMultiply(a, b, p, base)
		if err != nil {
			t.Fatalf("fault-free baseline failed: %v", err)
		}

		cfg := chaosConfig(&FaultPlan{Seed: 11, Specs: []FaultSpec{
			{Kind: FaultCrash, Rank: 1, Call: 3},
		}}, 11)
		cfg.SpareRanks = 2
		cfg.Trace = NewTraceRecorder()
		c, rep, err := ResilientMultiply(a, b, p, cfg)
		if err != nil {
			t.Fatalf("crash with spares not recovered: %v", err)
		}
		if d := MaxAbsDiff(c, clean); d != 0 {
			t.Errorf("recovered C differs from fault-free C by %g; replace changed the schedule", d)
		}
		if n := traceEventCount(cfg.Trace, "recover:replace"); n == 0 {
			t.Error("no recover:replace event; the spare pool was not used")
		}
		if n := traceEventCount(cfg.Trace, "recover:shrink"); n != 0 {
			t.Errorf("%d recover:shrink event(s); recovery degraded despite available spares", n)
		}
		promotions, released, _, _, _ := elasticTotals(rep)
		if promotions == 0 {
			t.Error("no spare promotion recorded")
		}
		if released == 0 {
			t.Error("no checkpoint blocks released; the epoch GC never ran")
		}
	})
}

// TestResilientSparePoolDryFallsBackToShrink: with no spares and a
// fully-utilized grid, the ladder's replace rung finds an empty pool
// and must degrade to shrink-replan — and still produce a correct C.
func TestResilientSparePoolDryFallsBackToShrink(t *testing.T) {
	const m, n, k, p = 32, 32, 32, 8 // 2x2x2 grid: all 8 ranks compute
	a := Random(m, k, 43)
	b := Random(k, n, 44)
	want := GemmRef(a, b, false, false)
	runGuarded(t, "pool-dry-shrink", func() {
		cfg := chaosConfig(&FaultPlan{Seed: 13, Specs: []FaultSpec{
			{Kind: FaultCrash, Rank: 3, Call: 3},
		}}, 13)
		cfg.Trace = NewTraceRecorder()
		c, rep, err := ResilientMultiply(a, b, p, cfg)
		if err != nil {
			t.Fatalf("pool-dry crash not recovered: %v", err)
		}
		if d := MaxAbsDiff(c, want); d > chaosAccuracy {
			t.Fatalf("max diff %g", d)
		}
		if n := traceEventCount(cfg.Trace, "recover:shrink"); n == 0 {
			t.Error("no recover:shrink event; where did the dead rank's slot go?")
		}
		if n := traceEventCount(cfg.Trace, "recover:replace"); n != 0 {
			t.Errorf("%d recover:replace event(s) with an empty pool", n)
		}
		promotions, _, _, _, _ := elasticTotals(rep)
		if promotions != 0 {
			t.Errorf("%d promotion(s) out of an empty pool", promotions)
		}
	})
}

// TestResilientPartitionHealRejoinEnablesReplace: a partition isolates
// the two reserved spares long enough for the detector to fence them,
// then heals; the prober re-admits them to the pool, and the crash's
// recovery replaces from the rejoined spares at full strength.
func TestResilientPartitionHealRejoinEnablesReplace(t *testing.T) {
	const p = 8
	a := Random(chaosM, chaosK, 45)
	b := Random(chaosK, chaosN, 46)
	want := GemmRef(a, b, false, false)
	runGuarded(t, "heal-rejoin-replace", func() {
		cfg := chaosConfig(&FaultPlan{Seed: 17, Specs: []FaultSpec{
			{Kind: FaultPartition, Rank: 0, Call: 2, Group: []int{6, 7}, Delay: 250 * time.Millisecond},
			{Kind: FaultCrash, Rank: 1, Call: 15},
		}}, 17)
		cfg.SpareRanks = 2 // spares are world ranks 6 and 7: exactly the fenced side
		cfg.MaxRetries = 6
		// The backoff pushes the recovery rebuild past the heal so the
		// fenced spares are back in the lobby pool when Replace runs.
		cfg.Backoff = 400 * time.Millisecond
		cfg.Net = &ReliableOptions{RTO: 5 * time.Millisecond}
		cfg.Heartbeat = &HeartbeatOptions{
			Interval:     10 * time.Millisecond,
			SuspectAfter: 40 * time.Millisecond,
			ConfirmAfter: 80 * time.Millisecond,
		}
		cfg.Trace = NewTraceRecorder()
		c, rep, err := ResilientMultiply(a, b, p, cfg)
		if err != nil {
			t.Fatalf("partition-heal-crash not recovered: %v", err)
		}
		if d := MaxAbsDiff(c, want); d > chaosAccuracy {
			t.Fatalf("max diff %g", d)
		}
		_, _, rejoins, _, confirms := elasticTotals(rep)
		if confirms == 0 {
			t.Error("isolated spares never fenced; the scenario did not exercise the detector")
		}
		if rejoins == 0 {
			t.Error("no hb:rejoin after the heal; fenced ranks never returned to the pool")
		}
		if n := traceEventCount(cfg.Trace, "recover:replace"); n == 0 {
			t.Error("no recover:replace; the rejoined spares were never claimed")
		}
	})
}

// TestResilientQuorumFloorFailsFast: below MinQuorum survivors the run
// must abandon recovery with ErrNoQuorum — quickly and typed, never by
// degrading further or hanging.
func TestResilientQuorumFloorFailsFast(t *testing.T) {
	const m, n, k, p = 32, 32, 32, 8
	a := Random(m, k, 47)
	b := Random(k, n, 48)
	runGuarded(t, "quorum-floor", func() {
		cfg := chaosConfig(&FaultPlan{Seed: 19, Specs: []FaultSpec{
			{Kind: FaultCrash, Rank: 2, Call: 3},
		}}, 19)
		cfg.MinQuorum = p // any loss at all is below the floor
		start := time.Now()
		_, _, err := ResilientMultiply(a, b, p, cfg)
		elapsed := time.Since(start)
		if err == nil {
			t.Fatal("run below the quorum floor succeeded; the floor was ignored")
		}
		if !errors.Is(err, ErrNoQuorum) {
			t.Errorf("error does not wrap ErrNoQuorum: %v", err)
		}
		if !errors.Is(err, ErrRankFailed) {
			t.Errorf("ErrNoQuorum does not wrap ErrRankFailed: %v", err)
		}
		if errors.Is(err, mpi.ErrTimeout) {
			t.Errorf("quorum failure surfaced as a timeout: %v", err)
		}
		if elapsed > chaosOpTimeout {
			t.Errorf("quorum fast-fail took %v; it leaned on a timeout", elapsed)
		}
	})
}

// TestResilientStragglerSuspectedNeverConfirmed is the false-suspicion
// regression: a straggler that is suspected but never confirmed must
// complete the run with zero membership changes, and the suspicion
// must be retracted (hb:clear) by run end.
func TestResilientStragglerSuspectedNeverConfirmed(t *testing.T) {
	const p = 8
	a := Random(chaosM, chaosK, 49)
	b := Random(chaosK, chaosN, 50)
	want := GemmRef(a, b, false, false)
	runGuarded(t, "straggler-cleared", func() {
		cfg := chaosConfig(&FaultPlan{Seed: 23, Specs: []FaultSpec{
			{Kind: FaultStraggle, Rank: 2, Call: 0, Delay: 2 * time.Millisecond},
		}}, 23)
		cfg.Heartbeat = &HeartbeatOptions{
			Interval:     5 * time.Millisecond,
			StraggleRTT:  300 * time.Microsecond,
			ConfirmAfter: 10 * time.Second, // never confirm: slowness is not death
		}
		cfg.Trace = NewTraceRecorder()
		c, rep, err := ResilientMultiply(a, b, p, cfg)
		if err != nil {
			t.Fatalf("straggler run failed: %v", err)
		}
		if d := MaxAbsDiff(c, want); d > chaosAccuracy {
			t.Fatalf("max diff %g", d)
		}
		var suspects int64
		for i := range rep.Ranks {
			suspects += rep.Ranks[i].Net.Suspects
		}
		if suspects == 0 {
			t.Error("straggler never suspected; the scenario did not exercise the detector")
		}
		_, _, _, clears, confirms := elasticTotals(rep)
		if confirms != 0 {
			t.Errorf("straggler fenced (%d confirm(s)): slowness mistaken for death", confirms)
		}
		if clears == 0 {
			t.Error("suspicion never retracted: no hb:clear by run end")
		}
		if n := traceEventCount(cfg.Trace, "hb:clear"); n == 0 {
			t.Error("no hb:clear event in the trace")
		}
		for _, ev := range []string{"recover:replace", "recover:shrink"} {
			if n := traceEventCount(cfg.Trace, ev); n != 0 {
				t.Errorf("%d %s event(s); a suspected-only straggler caused a membership change", n, ev)
			}
		}
	})
}

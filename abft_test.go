package ca3dmm

import (
	"testing"

	"repro/internal/mpi"
)

// ABFT acceptance suite: silent bit flips injected into local GEMM
// output tiles (FaultFlipCompute) and resident operand buffers
// (FaultFlipMem) must be absorbed by the checksum guard's two cheap
// rungs — correct-in-place and surgical tile recompute — without
// touching the replace/shrink/full-retry ladder, across every
// distributed algorithm. Same meta-contract as the chaos suite:
// verified-correct result or typed error, never a hang.

// sdcTotals folds the per-rank ABFT counters of a report.
func sdcTotals(rep *mpi.Report) (detected, corrected, recomputed int64) {
	for i := range rep.Ranks {
		detected += rep.Ranks[i].SDCDetected
		corrected += rep.Ranks[i].SDCCorrected
		recomputed += rep.Ranks[i].SDCRecomputed
	}
	return
}

func injectedCount(rep *mpi.Report) int {
	n := 0
	for i := range rep.Ranks {
		n += len(rep.Ranks[i].Injected)
	}
	return n
}

// TestABFTFlipAllAlgorithms is the headline scenario: one mantissa-MSB
// bit flip per run, in the output tile or an operand buffer, for each
// of the eight algorithms. The guard must detect it, absorb it in
// place, and deliver a result matching the serial reference.
func TestABFTFlipAllAlgorithms(t *testing.T) {
	a := Random(37, 29, 11)
	b := Random(29, 23, 12)
	want := GemmRef(a, b, false, false)
	for _, alg := range Algorithms() {
		for _, kind := range []FaultKind{FaultFlipCompute, FaultFlipMem} {
			p := 6
			if alg == CARMA {
				p = 8
			}
			tr := NewTraceRecorder()
			cfg := Config{
				Algorithm: alg, ABFT: true, Trace: tr,
				Fault: &FaultPlan{Seed: 7, Specs: []FaultSpec{
					{Kind: kind, Rank: 0, Call: 0, Bit: 52},
				}},
			}
			c, rep, _, err := Multiply(a, b, p, cfg)
			if err != nil {
				t.Errorf("%s/%s: %v", alg, kind, err)
				continue
			}
			if d := MaxAbsDiff(c, want); d > chaosAccuracy {
				t.Errorf("%s/%s: silently wrong result, max diff %g", alg, kind, d)
			}
			if injectedCount(rep) == 0 {
				t.Errorf("%s/%s: no flip fired — the scenario is vacuous", alg, kind)
			}
			det, cor, rec := sdcTotals(rep)
			if det == 0 || cor+rec == 0 {
				t.Errorf("%s/%s: detected=%d corrected=%d recomputed=%d — guard did not absorb the flip",
					alg, kind, det, cor, rec)
			}
			if n := traceEventCount(tr, "sdc:detect"); n == 0 {
				t.Errorf("%s/%s: no sdc:detect instant on the timeline", alg, kind)
			}
		}
	}
}

// TestABFTFlipDisabledGuardInert pins the gating contract: flip specs
// fire only at the compute events the ABFT path presents, so with the
// guard off the plan must not fire at all — and certainly must not
// perturb the result or the communication fault stream.
func TestABFTFlipDisabledGuardInert(t *testing.T) {
	a := Random(37, 29, 11)
	b := Random(29, 23, 12)
	want := GemmRef(a, b, false, false)
	cfg := Config{
		Fault: &FaultPlan{Seed: 7, Specs: []FaultSpec{
			{Kind: FaultFlipCompute, Rank: -1, Prob: 1},
			{Kind: FaultFlipMem, Rank: -1, Prob: 1},
		}},
	}
	c, rep, _, err := Multiply(a, b, 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(c, want); d > chaosAccuracy {
		t.Fatalf("result off by %g with ABFT disabled", d)
	}
	if n := injectedCount(rep); n != 0 {
		t.Fatalf("%d flips fired with the guard disabled", n)
	}
}

// TestABFTExponentFlipRecompute forces the rung below correction: an
// exponent-bit flip makes in-place repair numerically impossible, so
// the guard must fall back to the surgical tile recompute — still
// without any run-level recovery.
func TestABFTExponentFlipRecompute(t *testing.T) {
	a := Random(37, 29, 13)
	b := Random(29, 23, 14)
	want := GemmRef(a, b, false, false)
	cfg := Config{
		ABFT: true,
		Fault: &FaultPlan{Seed: 3, Specs: []FaultSpec{
			{Kind: FaultFlipCompute, Rank: 1, Call: 0, Bit: 62},
		}},
	}
	c, rep, _, err := Multiply(a, b, 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(c, want); d > chaosAccuracy {
		t.Fatalf("result off by %g", d)
	}
	det, _, rec := sdcTotals(rep)
	if det == 0 || rec == 0 {
		t.Fatalf("detected=%d recomputed=%d, want both nonzero", det, rec)
	}
}

// TestABFTResilientSingleFlipNoLadder is the ISSUE acceptance
// criterion: a single-bit-flip resilient run completes via
// correct-in-place or tile-recompute WITHOUT replace, shrink, or
// full retry — asserted via the sdc:* instants being present and the
// recover:* ladder events being absent.
func TestABFTResilientSingleFlipNoLadder(t *testing.T) {
	a := Random(chaosM, chaosK, 51)
	b := Random(chaosK, chaosN, 52)
	want := GemmRef(a, b, false, false)
	for _, kind := range []FaultKind{FaultFlipCompute, FaultFlipMem} {
		kind := kind
		runGuarded(t, "abft-single-flip", func() {
			tr := NewTraceRecorder()
			rc := chaosConfig(&FaultPlan{Seed: 9, Specs: []FaultSpec{
				{Kind: kind, Rank: 2, Call: 0, Bit: 52},
			}}, 9)
			rc.ABFT = true
			rc.Trace = tr
			c, rep, err := ResilientMultiply(a, b, chaosP, rc)
			if err != nil {
				t.Errorf("%s: %v", kind, err)
				return
			}
			if d := MaxAbsDiff(c, want); d > chaosAccuracy {
				t.Errorf("%s: result off by %g", kind, d)
			}
			if injectedCount(rep) == 0 {
				t.Errorf("%s: no flip fired", kind)
			}
			det, cor, rec := sdcTotals(rep)
			if det == 0 || cor+rec == 0 {
				t.Errorf("%s: guard did not absorb the flip (det=%d cor=%d rec=%d)", kind, det, cor, rec)
			}
			if n := traceEventCount(tr, "sdc:detect"); n == 0 {
				t.Errorf("%s: no sdc:detect instant", kind)
			}
			for _, ev := range []string{"recover:shrink", "recover:replace", "recover:retry"} {
				if n := traceEventCount(tr, ev); n != 0 {
					t.Errorf("%s: %s fired %d times — the flip escalated past the ABFT rungs", kind, ev, n)
				}
			}
		})
	}
}

// TestABFTChaosFlipSweep sweeps seeds over mixed flip cocktails (both
// kinds, mantissa and exponent bits, random ranks) across the
// resilient path: every run must end verified-correct or with a typed
// error — never a hang, never a silently wrong C.
func TestABFTChaosFlipSweep(t *testing.T) {
	a := Random(chaosM, chaosK, 61)
	b := Random(chaosK, chaosN, 62)
	want := GemmRef(a, b, false, false)
	// chaosP is non-ideal, so the planner idles ranks; a seed whose
	// flip lands on an idle rank fires nothing, which is fine — but
	// the sweep as a whole must exercise the guard.
	fired := 0
	for seed := uint64(0); seed < 10; seed++ {
		seed := seed
		runGuarded(t, "abft-flip-sweep", func() {
			plan := &FaultPlan{Seed: seed, Specs: []FaultSpec{
				{Kind: FaultFlipCompute, Rank: int(seed) % chaosP, Call: int64(seed % 3), Bit: int(20 + seed*5%44)},
				{Kind: FaultFlipMem, Rank: int(seed+2) % chaosP, Call: int64(seed % 2), Bit: 52},
			}}
			rc := chaosConfig(plan, seed)
			rc.ABFT = true
			c, rep, err := ResilientMultiply(a, b, chaosP, rc)
			if err != nil {
				// Typed errors are within contract.
				return
			}
			if d := MaxAbsDiff(c, want); d > chaosAccuracy {
				t.Errorf("seed %d: silently wrong result, max diff %g", seed, d)
			}
			fired += injectedCount(rep)
		})
	}
	if fired == 0 {
		t.Error("no seed fired a single flip; the sweep is not exercising the guard")
	}
}

// TestABFTMixedFlipAndDrop layers a message drop on top of a compute
// flip: the reliable transport absorbs the drop, the checksum guard
// absorbs the flip, and the two recovery planes must not interfere.
func TestABFTMixedFlipAndDrop(t *testing.T) {
	a := Random(chaosM, chaosK, 71)
	b := Random(chaosK, chaosN, 72)
	want := GemmRef(a, b, false, false)
	runGuarded(t, "abft-flip-plus-drop", func() {
		plan := &FaultPlan{Seed: 5, Specs: []FaultSpec{
			{Kind: FaultFlipCompute, Rank: 1, Call: 0, Bit: 52},
			{Kind: FaultDrop, Rank: 3, Call: 2},
		}}
		rc := chaosConfig(plan, 5)
		rc.ABFT = true
		c, rep, err := ResilientMultiply(a, b, chaosP, rc)
		if err != nil {
			t.Fatalf("mixed flip+drop: %v", err)
		}
		if d := MaxAbsDiff(c, want); d > chaosAccuracy {
			t.Fatalf("result off by %g", d)
		}
		det, cor, rec := sdcTotals(rep)
		if det == 0 || cor+rec == 0 {
			t.Fatalf("flip not absorbed (det=%d cor=%d rec=%d)", det, cor, rec)
		}
	})
}

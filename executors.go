package ca3dmm

import (
	"fmt"
	"time"

	"repro/internal/algo1d"
	"repro/internal/algo3d"
	"repro/internal/c25d"
	"repro/internal/carma"
	"repro/internal/core"
	"repro/internal/cosma"
	"repro/internal/dist"
	"repro/internal/grid"
	"repro/internal/mat"
	"repro/internal/mpi"
	"repro/internal/summa"
)

// This file adapts each internal planner to the executor interface of
// the public Plan type, mapping per-algorithm stage timings into the
// common StageTimes vocabulary.

type coreExec struct{ p *core.Plan }

func (e coreExec) execute(c *Comm, aLocal *Matrix, aL Layout, bLocal *Matrix, bL Layout, cL Layout) (*Matrix, StageTimes) {
	out, tm := e.p.Execute(c, aLocal, aL, bLocal, bL, cL)
	return out, StageTimes{
		Redistribute: tm.Redistribute,
		ReplicateAB:  tm.Allgather + tm.CannonComm,
		LocalCompute: tm.CannonComp,
		ReduceC:      tm.ReduceScatter,
		Total:        tm.Total,
		MatmulOnly:   tm.MatmulOnly(),
	}
}

func (e coreExec) native() (Layout, Layout, Layout) {
	return e.p.ALayout, e.p.BLayout, e.p.CLayout
}

func (e coreExec) gridDims() (int, int, int) { return e.p.G.Pm, e.p.G.Pn, e.p.G.Pk }
func (e coreExec) activeProcs() int          { return e.p.ActiveProcs() }

type cosmaExec struct{ p *cosma.Plan }

func (e cosmaExec) execute(c *Comm, aLocal *Matrix, aL Layout, bLocal *Matrix, bL Layout, cL Layout) (*Matrix, StageTimes) {
	out, tm := e.p.Execute(c, aLocal, aL, bLocal, bL, cL)
	return out, StageTimes{
		Redistribute: tm.Redistribute,
		ReplicateAB:  tm.Replicate,
		LocalCompute: tm.Compute,
		ReduceC:      tm.Reduce,
		Total:        tm.Total,
		MatmulOnly:   tm.Total - tm.Redistribute,
	}
}

func (e cosmaExec) native() (Layout, Layout, Layout) {
	return e.p.ALayout, e.p.BLayout, e.p.CLayout
}

func (e cosmaExec) gridDims() (int, int, int) { return e.p.G.Pm, e.p.G.Pn, e.p.G.Pk }
func (e cosmaExec) activeProcs() int          { return e.p.ActiveProcs() }

type carmaExec struct{ p *carma.Plan }

func (e carmaExec) execute(c *Comm, aLocal *Matrix, aL Layout, bLocal *Matrix, bL Layout, cL Layout) (*Matrix, StageTimes) {
	out, tm := e.p.Execute(c, aLocal, aL, bLocal, bL, cL)
	return out, StageTimes{
		Redistribute: tm.Redistribute,
		ReplicateAB:  tm.Replicate,
		LocalCompute: tm.Compute,
		ReduceC:      tm.Reduce,
		Total:        tm.Total,
		MatmulOnly:   tm.Total - tm.Redistribute,
	}
}

func (e carmaExec) native() (Layout, Layout, Layout) {
	return e.p.ALayout, e.p.BLayout, e.p.CLayout
}

func (e carmaExec) gridDims() (int, int, int) {
	pm, pn, pk := 1, 1, 1
	for _, d := range e.p.Splits {
		switch d {
		case carma.DimM:
			pm *= 2
		case carma.DimN:
			pn *= 2
		case carma.DimK:
			pk *= 2
		}
	}
	return pm, pn, pk
}

func (e carmaExec) activeProcs() int { return e.p.P }

type c25dExec struct{ p *c25d.Plan }

func (e c25dExec) execute(c *Comm, aLocal *Matrix, aL Layout, bLocal *Matrix, bL Layout, cL Layout) (*Matrix, StageTimes) {
	out, tm := e.p.Execute(c, aLocal, aL, bLocal, bL, cL)
	return out, StageTimes{
		Redistribute: tm.Redistribute,
		ReplicateAB:  tm.Spread + tm.SummaComm,
		LocalCompute: tm.Compute,
		ReduceC:      tm.Reduce,
		Total:        tm.Total,
		MatmulOnly:   tm.Total - tm.Redistribute,
	}
}

func (e c25dExec) native() (Layout, Layout, Layout) {
	return e.p.ALayout, e.p.BLayout, e.p.CLayout
}

func (e c25dExec) gridDims() (int, int, int) { return e.p.Side, e.p.Side, e.p.Layers }
func (e c25dExec) activeProcs() int          { return e.p.ActiveProcs() }

type algo1dExec struct{ p *algo1d.Plan }

func (e algo1dExec) execute(c *Comm, aLocal *Matrix, aL Layout, bLocal *Matrix, bL Layout, cL Layout) (*Matrix, StageTimes) {
	out, tm := e.p.Execute(c, aLocal, aL, bLocal, bL, cL)
	return out, StageTimes{
		Redistribute: tm.Redistribute,
		ReplicateAB:  tm.Replicate,
		LocalCompute: tm.Compute,
		ReduceC:      tm.Reduce,
		Total:        tm.Total,
		MatmulOnly:   tm.Total - tm.Redistribute,
	}
}

func (e algo1dExec) native() (Layout, Layout, Layout) {
	return e.p.ALayout, e.p.BLayout, e.p.CLayout
}

func (e algo1dExec) gridDims() (int, int, int) {
	switch e.p.V {
	case algo1d.SplitM:
		return e.p.P, 1, 1
	case algo1d.SplitN:
		return 1, e.p.P, 1
	default:
		return 1, 1, e.p.P
	}
}

func (e algo1dExec) activeProcs() int { return e.p.P }

type algo3dExec struct{ p *algo3d.Plan }

func (e algo3dExec) execute(c *Comm, aLocal *Matrix, aL Layout, bLocal *Matrix, bL Layout, cL Layout) (*Matrix, StageTimes) {
	out, tm := e.p.Execute(c, aLocal, aL, bLocal, bL, cL)
	return out, StageTimes{
		Redistribute: tm.Redistribute,
		ReplicateAB:  tm.Broadcast,
		LocalCompute: tm.Compute,
		ReduceC:      tm.Reduce,
		Total:        tm.Total,
		MatmulOnly:   tm.Total - tm.Redistribute,
	}
}

func (e algo3dExec) native() (Layout, Layout, Layout) {
	return e.p.ALayout, e.p.BLayout, e.p.CLayout
}

func (e algo3dExec) gridDims() (int, int, int) { return e.p.G.Pm, e.p.G.Pn, e.p.G.Pk }
func (e algo3dExec) activeProcs() int          { return e.p.G.Procs() }

// summaExec runs the plain 2D SUMMA baseline over the full world:
// redistribute into 2D blocks, SUMMA, redistribute out.
type summaExec struct {
	cfg                       summa.Config
	p                         int
	transA, transB            bool
	aLayout, bLayout, cLayout *dist.Explicit
}

func newSummaExec(m, n, k, p int, cfg Config) (summaExec, error) {
	pr, pc, err := grid.Optimize2D(m, n, k, p)
	if err != nil {
		return summaExec{}, err
	}
	sc := summa.Config{
		Pr: pr, Pc: pc, M: m, K: k, N: n, Panel: cfg.SUMMAPanel,
		Overlap: !cfg.NoOverlap, Prefetch: cfg.OverlapDepth,
		ABFT: cfg.abftOptions(),
	}
	e := summaExec{cfg: sc, p: p, transA: cfg.TransA, transB: cfg.TransB}
	e.aLayout = dist.NewExplicit(m, k, p)
	e.bLayout = dist.NewExplicit(k, n, p)
	e.cLayout = dist.NewExplicit(m, n, p)
	for r := 0; r < pr*pc; r++ {
		row, col := r/pc, r%pc
		ar0, ac0, arows, acols := sc.ABlock(row, col)
		e.aLayout.SetBlock(r, ar0, ac0, arows, acols)
		br0, bc0, brows, bcols := sc.BBlock(row, col)
		e.bLayout.SetBlock(r, br0, bc0, brows, bcols)
		cr0, cc0, crows, ccols := sc.CBlock(row, col)
		e.cLayout.SetBlock(r, cr0, cc0, crows, ccols)
	}
	return e, nil
}

func (e summaExec) execute(c *Comm, aLocal *Matrix, aL Layout, bLocal *Matrix, bL Layout, cL Layout) (*Matrix, StageTimes) {
	if c.Size() != e.p {
		panic(fmt.Sprintf("summa: communicator size %d != plan size %d", c.Size(), e.p))
	}
	var st StageTimes
	t0 := time.Now()
	tr := time.Now()
	aNat := dist.RedistributeOp(c, aL, aLocal, e.aLayout, e.transA)
	bNat := dist.RedistributeOp(c, bL, bLocal, e.bLayout, e.transB)
	st.Redistribute += time.Since(tr)

	active := c.Rank() < e.cfg.Pr*e.cfg.Pc
	color := mpi.Undefined
	if active {
		color = 0
	}
	gridComm := c.Split(color, c.Rank())
	var cNat *Matrix
	if active {
		var tm summa.Timings
		cNat, tm = summaMultiply(gridComm, aNat, bNat, e.cfg)
		st.ReplicateAB += tm.Comm
		st.LocalCompute += tm.Compute
	} else {
		cr, cc := e.cLayout.LocalShape(c.Rank())
		cNat = mat.New(cr, cc)
	}

	tr = time.Now()
	out := dist.Redistribute(c, e.cLayout, cNat, cL)
	st.Redistribute += time.Since(tr)
	st.Total = time.Since(t0)
	st.MatmulOnly = st.Total - st.Redistribute
	return out, st
}

// summaMultiply is split out for clarity (and to keep the adapter
// symmetric with the other executors).
func summaMultiply(c *Comm, a, b *Matrix, cfg summa.Config) (*Matrix, summa.Timings) {
	return summa.Multiply(c, a, b, cfg)
}

func (e summaExec) native() (Layout, Layout, Layout) { return e.aLayout, e.bLayout, e.cLayout }
func (e summaExec) gridDims() (int, int, int)        { return e.cfg.Pr, e.cfg.Pc, 1 }
func (e summaExec) activeProcs() int                 { return e.cfg.Pr * e.cfg.Pc }

package ca3dmm

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/mpi"
)

// Chaos suite for the self-healing execution path. Every test runs a
// fault-injected multiplication to completion under a hard wall-clock
// guard: the contract is that CA3DMM under chaos either returns a
// Freivalds-verified C or a typed error — never a hang and never a
// silently wrong answer.

const (
	chaosM = 45
	chaosN = 38
	chaosK = 29
	// chaosP is deliberately non-ideal (prime): the planner idles
	// ranks, and shrink-replan drops it to 6, 5, ... survivors.
	chaosP = 7

	chaosOpTimeout  = 5 * time.Second
	chaosWallClock  = 60 * time.Second
	chaosAccuracy   = 1e-9
	chaosSweepSeeds = 20
)

// runGuarded fails the test if fn does not complete within the wall
// clock — the "zero hangs" assertion.
func runGuarded(t *testing.T, name string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(chaosWallClock):
		t.Fatalf("%s: hung past %v", name, chaosWallClock)
	}
}

func chaosConfig(fault *FaultPlan, seed uint64) ResilientConfig {
	return ResilientConfig{
		MaxRetries:   4,
		Backoff:      time.Millisecond,
		VerifyTrials: 20,
		VerifySeed:   seed,
		Timeout:      chaosOpTimeout,
		Fault:        fault,
	}
}

// crashPlusCorruptPlan injects one rank crash and one payload bit-flip,
// both deterministic in seed: the acceptance scenario of the
// self-healing loop (shrink around the crash, catch the corruption via
// Freivalds, retry).
func crashPlusCorruptPlan(seed uint64, p int) *FaultPlan {
	return &FaultPlan{
		Seed: seed,
		Specs: []FaultSpec{
			{Kind: FaultCrash, Rank: int(seed) % p, Call: int64(2 + seed%5)},
			{Kind: FaultCorrupt, Rank: int(seed+3) % p, Call: int64(seed % 3), Bit: 52},
		},
	}
}

// TestResilientChaosSweep is the headline acceptance sweep: 20 seeds,
// each injecting one rank crash and one payload corruption into a
// CA3DMM run on a non-ideal process count. Every seed must produce a
// verified, correct C through shrink-and-replan.
func TestResilientChaosSweep(t *testing.T) {
	a := Random(chaosM, chaosK, 1)
	b := Random(chaosK, chaosN, 2)
	want := GemmRef(a, b, false, false)
	for seed := uint64(0); seed < chaosSweepSeeds; seed++ {
		seed := seed
		runGuarded(t, "sweep", func() {
			plan := crashPlusCorruptPlan(seed, chaosP)
			c, rep, err := ResilientMultiply(a, b, chaosP, chaosConfig(plan, seed))
			if err != nil {
				t.Errorf("seed %d: recovery failed: %v", seed, err)
				return
			}
			if d := MaxAbsDiff(c, want); d > chaosAccuracy {
				t.Errorf("seed %d: silently wrong result, max diff %g", seed, d)
			}
			injected := 0
			for i := range rep.Ranks {
				injected += len(rep.Ranks[i].Injected)
			}
			if injected == 0 {
				t.Errorf("seed %d: no fault fired; the sweep is not exercising recovery", seed)
			}
		})
	}
}

// TestChaosNoRecoveryTypedErrors is the control sweep: the same fault
// plans with recovery disabled must fail with typed errors — a rank
// failure or a verification failure — and never with a deadlock
// timeout.
func TestChaosNoRecoveryTypedErrors(t *testing.T) {
	a := Random(chaosM, chaosK, 1)
	b := Random(chaosK, chaosN, 2)
	for seed := uint64(0); seed < chaosSweepSeeds; seed++ {
		seed := seed
		runGuarded(t, "control", func() {
			plan := crashPlusCorruptPlan(seed, chaosP)
			cfg := chaosConfig(plan, seed)
			cfg.DisableRecovery = true
			_, _, err := ResilientMultiply(a, b, chaosP, cfg)
			if err == nil {
				t.Errorf("seed %d: succeeded with recovery disabled despite injected crash", seed)
				return
			}
			if !errors.Is(err, ErrRankFailed) && !errors.Is(err, ErrVerifyFailed) {
				t.Errorf("seed %d: untyped failure: %v", seed, err)
			}
			if errors.Is(err, mpi.ErrTimeout) {
				t.Errorf("seed %d: failure surfaced as a timeout: %v", seed, err)
			}
		})
	}
}

// TestResilientChaosMatrix sweeps fault classes against problem shapes:
// 1D-degenerate, cubic 3D, and non-ideal process counts.
func TestResilientChaosMatrix(t *testing.T) {
	shapes := []struct {
		name    string
		m, n, k int
		p       int
	}{
		{"1d", 240, 24, 12, 6},
		{"3d", 32, 32, 32, 8},
		{"non-ideal-p", chaosM, chaosN, chaosK, chaosP},
	}
	faults := []struct {
		name string
		plan func(seed uint64, p int) *FaultPlan
	}{
		{"crash", func(seed uint64, p int) *FaultPlan {
			return &FaultPlan{Seed: seed, Specs: []FaultSpec{
				{Kind: FaultCrash, Rank: int(seed) % p, Call: int64(1 + seed%4)},
			}}
		}},
		{"corrupt", func(seed uint64, p int) *FaultPlan {
			return &FaultPlan{Seed: seed, Specs: []FaultSpec{
				{Kind: FaultCorrupt, Rank: int(seed) % p, Call: int64(seed % 3), Bit: 52},
			}}
		}},
		{"delay", func(seed uint64, p int) *FaultPlan {
			return &FaultPlan{Seed: seed, Specs: []FaultSpec{
				{Kind: FaultDelay, Rank: -1, Prob: 0.05, Delay: 100 * time.Microsecond},
				{Kind: FaultStraggle, Rank: int(seed) % p, Call: 0, Delay: 100 * time.Microsecond},
			}}
		}},
	}
	for _, sh := range shapes {
		for _, fl := range faults {
			sh, fl := sh, fl
			t.Run(sh.name+"/"+fl.name, func(t *testing.T) {
				a := Random(sh.m, sh.k, 3)
				b := Random(sh.k, sh.n, 4)
				want := GemmRef(a, b, false, false)
				for seed := uint64(0); seed < 5; seed++ {
					seed := seed
					runGuarded(t, sh.name+"/"+fl.name, func() {
						plan := fl.plan(seed, sh.p)
						c, _, err := ResilientMultiply(a, b, sh.p, chaosConfig(plan, seed))
						if err != nil {
							t.Errorf("seed %d: %v", seed, err)
							return
						}
						if d := MaxAbsDiff(c, want); d > chaosAccuracy {
							t.Errorf("seed %d: max diff %g", seed, d)
						}
					})
				}
			})
		}
	}
}

// TestResilientCascadingCrashes: staggered crashes keep firing in
// successive epochs, so the run shrinks more than once. Regression for
// the post-shrink revocation: survivors of a shrink must share one
// revocation instance per epoch, or a second-epoch failure leaves
// peers blocked in the retry until the deadlock timer.
func TestResilientCascadingCrashes(t *testing.T) {
	const p = 8
	a := Random(chaosM, chaosK, 9)
	b := Random(chaosK, chaosN, 10)
	want := GemmRef(a, b, false, false)
	for seed := uint64(0); seed < 5; seed++ {
		seed := seed
		runGuarded(t, "cascade", func() {
			plan := &FaultPlan{Seed: seed}
			for i := 0; i < 3; i++ {
				plan.Specs = append(plan.Specs, FaultSpec{
					Kind: FaultCrash, Rank: (int(seed) + 5 + i) % p, Call: int64(2 + 3*i),
				})
			}
			cfg := chaosConfig(plan, seed)
			cfg.MaxRetries = 5
			c, _, err := ResilientMultiply(a, b, p, cfg)
			if err != nil {
				t.Errorf("seed %d: cascading recovery failed: %v", seed, err)
				return
			}
			if d := MaxAbsDiff(c, want); d > chaosAccuracy {
				t.Errorf("seed %d: max diff %g", seed, d)
			}
		})
	}
}

// TestResilientCleanRun: with no faults the resilient path must match
// the plain path on the first attempt.
func TestResilientCleanRun(t *testing.T) {
	a := Random(chaosM, chaosK, 5)
	b := Random(chaosK, chaosN, 6)
	want := GemmRef(a, b, false, false)
	runGuarded(t, "clean", func() {
		c, _, err := ResilientMultiply(a, b, chaosP, chaosConfig(nil, 0))
		if err != nil {
			t.Fatalf("clean resilient run failed: %v", err)
		}
		if d := MaxAbsDiff(c, want); d > chaosAccuracy {
			t.Fatalf("clean resilient run wrong: max diff %g", d)
		}
	})
}

// TestResilientTransposed: recovery must respect transpose flags (the
// checkpoints hold the stored matrices, not op(A)/op(B)).
func TestResilientTransposed(t *testing.T) {
	a := Random(chaosK, chaosM, 7) // stored k x m, op(A) = Aᵀ
	b := Random(chaosN, chaosK, 8) // stored n x k, op(B) = Bᵀ
	want := GemmRef(a, b, true, true)
	runGuarded(t, "transposed", func() {
		plan := &FaultPlan{Seed: 99, Specs: []FaultSpec{
			{Kind: FaultCrash, Rank: 2, Call: 3},
		}}
		cfg := chaosConfig(plan, 99)
		cfg.TransA, cfg.TransB = true, true
		c, _, err := ResilientMultiply(a, b, chaosP, cfg)
		if err != nil {
			t.Fatalf("transposed recovery failed: %v", err)
		}
		if d := MaxAbsDiff(c, want); d > chaosAccuracy {
			t.Fatalf("transposed recovery wrong: max diff %g", d)
		}
	})
}

// TestOverlapChaosMidPrefetch aims each fault class at the middle of
// the execution, where the overlapped schedule has requests in flight
// (the replication Iallgatherv, Cannon Isendrecv shifts, prefetched
// panels). The whole resilience suite already runs with overlap on —
// it is the default — but this sweep walks the injection call index
// across the prefetch window explicitly. Contract: a verified-correct
// C or a typed error, never a hang, never a silently wrong answer.
func TestOverlapChaosMidPrefetch(t *testing.T) {
	const p = 8
	a := Random(32, 32, 41)
	b := Random(32, 32, 42)
	want := GemmRef(a, b, false, false)
	faults := []struct {
		name string
		spec func(call int64, seed uint64) []FaultSpec
	}{
		{"crash", func(call int64, seed uint64) []FaultSpec {
			return []FaultSpec{{Kind: FaultCrash, Rank: int(seed) % p, Call: call}}
		}},
		{"drop", func(call int64, seed uint64) []FaultSpec {
			return []FaultSpec{{Kind: FaultDrop, Rank: -1, Prob: 0.05}}
		}},
		{"partition", func(call int64, seed uint64) []FaultSpec {
			return []FaultSpec{{Kind: FaultPartition, Rank: 0, Call: call, Group: []int{int(seed)%(p-1) + 1}}}
		}},
		{"straggle", func(call int64, seed uint64) []FaultSpec {
			return []FaultSpec{{Kind: FaultStraggle, Rank: int(seed) % p, Call: call, Delay: time.Millisecond}}
		}},
	}
	for _, fl := range faults {
		fl := fl
		t.Run(fl.name, func(t *testing.T) {
			for call := int64(1); call <= 6; call++ {
				seed := uint64(call) * 13
				runGuarded(t, fl.name, func() {
					cfg := chaosConfig(&FaultPlan{Seed: seed, Specs: fl.spec(call, seed)}, seed)
					cfg.Net = &ReliableOptions{RTO: 2 * time.Millisecond}
					if fl.name == "partition" {
						cfg.Heartbeat = &HeartbeatOptions{
							Interval:     10 * time.Millisecond,
							SuspectAfter: 50 * time.Millisecond,
							ConfirmAfter: 250 * time.Millisecond,
						}
					}
					c, _, err := ResilientMultiply(a, b, p, cfg)
					if err != nil {
						if !errors.Is(err, ErrRankFailed) && !errors.Is(err, ErrVerifyFailed) &&
							!errors.Is(err, ErrRetriesExhausted) && !errors.Is(err, ErrNoQuorum) {
							t.Errorf("call %d: untyped failure: %v", call, err)
						}
						return
					}
					if d := MaxAbsDiff(c, want); d > chaosAccuracy {
						t.Errorf("call %d: silently wrong result, max diff %g", call, d)
					}
				})
			}
		})
	}
}

// TestRevokeDrainsInFlightRequests is the goroutine-leak regression for
// the overlap machinery: a crash mid-run unwinds ranks that abandoned
// nonblocking requests without Wait, and the end-of-run revocation must
// wake and join every background claim before RunOpt returns. Without
// the drain, each faulted run leaks blocked receive goroutines and this
// count climbs monotonically.
func TestRevokeDrainsInFlightRequests(t *testing.T) {
	a := Random(32, 32, 43)
	b := Random(32, 32, 44)
	crashRun := func(seed uint64) {
		cfg := Config{
			Timeout: chaosOpTimeout,
			Fault: &FaultPlan{Seed: seed, Specs: []FaultSpec{
				{Kind: FaultCrash, Rank: int(seed) % 8, Call: int64(2 + seed%4)},
			}},
		}
		if _, _, _, err := Multiply(a, b, 8, cfg); err == nil {
			t.Fatal("crash-faulted run without recovery unexpectedly succeeded")
		}
	}
	runGuarded(t, "revoke-drain", func() {
		for seed := uint64(0); seed < 3; seed++ { // warm up lazily started runtime helpers
			crashRun(seed)
		}
		runtime.GC()
		base := runtime.NumGoroutine()
		for seed := uint64(3); seed < 15; seed++ {
			crashRun(seed)
		}
		var n int
		for i := 0; i < 50; i++ { // goroutine exits are asynchronous; poll briefly
			runtime.GC()
			if n = runtime.NumGoroutine(); n <= base+4 {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("goroutines grew from %d to %d across faulted runs: in-flight requests not drained on revoke", base, n)
	})
}

// netTotals folds every rank's transport/detector counters into one.
func netTotals(rep *mpi.Report) NetStats {
	var t NetStats
	for i := range rep.Ranks {
		n := rep.Ranks[i].Net
		t.Retransmits += n.Retransmits
		t.DupDrops += n.DupDrops
		t.Lost += n.Lost
		t.Unreachable += n.Unreachable
		t.Suspects += n.Suspects
		t.Confirms += n.Confirms
	}
	return t
}

// perOpRetrans sums the per-op retransmit counters across ranks and ops.
func perOpRetrans(rep *mpi.Report) int64 {
	var t int64
	for i := range rep.Ranks {
		for _, op := range rep.Ranks[i].PerOp {
			t += op.Retrans
		}
	}
	return t
}

// TestDropAllAlgorithmsBitCorrect is the transport acceptance sweep:
// 5% of every message of every algorithm vanishes in the fabric, and
// each algorithm must still produce exactly the C it produces on a
// lossless fabric (drop+retransmit may reorder wall-clock time, never
// arithmetic) — itself verified against the serial reference — with
// the retransmissions visible in the per-op stats.
func TestDropAllAlgorithmsBitCorrect(t *testing.T) {
	const m, n, k, p = 48, 40, 36, 8
	a := Random(m, k, 21)
	b := Random(k, n, 22)
	want := GemmRef(a, b, false, false)
	for _, alg := range Algorithms() {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			runGuarded(t, string(alg), func() {
				clean, _, _, err := Multiply(a, b, p, Config{Algorithm: alg})
				if err != nil {
					t.Fatalf("clean run failed: %v", err)
				}
				cfg := Config{
					Algorithm: alg,
					Timeout:   10 * time.Second,
					Fault: &FaultPlan{Seed: 7, Specs: []FaultSpec{
						{Kind: FaultDrop, Rank: -1, Prob: 0.05},
					}},
					Net: &ReliableOptions{RTO: 2 * time.Millisecond},
				}
				c, rep, _, err := Multiply(a, b, p, cfg)
				if err != nil {
					t.Fatalf("lossy run failed: %v", err)
				}
				if d := MaxAbsDiff(c, clean); d != 0 {
					t.Errorf("lossy result differs from lossless result by %g; retransmission changed arithmetic", d)
				}
				if d := MaxAbsDiff(c, want); d > chaosAccuracy {
					t.Errorf("result off the serial reference by %g", d)
				}
				if r := perOpRetrans(rep); r == 0 {
					t.Error("5%% drop fired no retransmissions in Stats.PerOp")
				}
				if netTotals(rep).Retransmits == 0 {
					t.Error("5%% drop fired no retransmissions in NetStats")
				}
			})
		})
	}
}

// TestResilientPartitionHealsNoShrink: a partition that heals inside
// the retransmit budget must cost retransmissions only — no fencing,
// no shrink, and a correct result on the full process count.
func TestResilientPartitionHealsNoShrink(t *testing.T) {
	const p = 8
	a := Random(chaosM, chaosK, 31)
	b := Random(chaosK, chaosN, 32)
	want := GemmRef(a, b, false, false)
	runGuarded(t, "partition-heal", func() {
		cfg := chaosConfig(&FaultPlan{Seed: 3, Specs: []FaultSpec{
			{Kind: FaultPartition, Rank: 0, Call: 1, Delay: 100 * time.Millisecond, Group: []int{6, 7}},
		}}, 3)
		cfg.Net = &ReliableOptions{RTO: 5 * time.Millisecond}
		cfg.Heartbeat = &HeartbeatOptions{
			Interval:     10 * time.Millisecond,
			SuspectAfter: 60 * time.Millisecond,
			ConfirmAfter: 10 * time.Second, // far beyond the heal: never confirm
		}
		c, rep, err := ResilientMultiply(a, b, p, cfg)
		if err != nil {
			t.Fatalf("run across healing partition failed: %v", err)
		}
		if d := MaxAbsDiff(c, want); d > chaosAccuracy {
			t.Fatalf("max diff %g", d)
		}
		net := netTotals(rep)
		if net.Retransmits == 0 {
			t.Error("no retransmissions across the partition window")
		}
		if net.Confirms != 0 {
			t.Errorf("healing partition fenced %d rank(s); shrink where none was needed", net.Confirms)
		}
	})
}

// TestResilientPartitionOutlastsAndShrinks: a permanent partition must
// be resolved by the failure detector — the majority fences the
// isolated ranks, the survivors shrink-replan, and the run still
// produces a verified C instead of deadlocking into the timeout.
func TestResilientPartitionOutlastsAndShrinks(t *testing.T) {
	const p = 8
	a := Random(chaosM, chaosK, 33)
	b := Random(chaosK, chaosN, 34)
	want := GemmRef(a, b, false, false)
	runGuarded(t, "partition-shrink", func() {
		cfg := chaosConfig(&FaultPlan{Seed: 4, Specs: []FaultSpec{
			{Kind: FaultPartition, Rank: 0, Call: 2, Group: []int{6, 7}}, // Delay 0: permanent
		}}, 4)
		cfg.Net = &ReliableOptions{RTO: 5 * time.Millisecond, Budget: 6}
		cfg.Heartbeat = &HeartbeatOptions{
			Interval:     10 * time.Millisecond,
			SuspectAfter: 50 * time.Millisecond,
			ConfirmAfter: 250 * time.Millisecond,
		}
		start := time.Now()
		c, rep, err := ResilientMultiply(a, b, p, cfg)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatalf("permanent partition not recovered: %v", err)
		}
		if d := MaxAbsDiff(c, want); d > chaosAccuracy {
			t.Fatalf("max diff %g", d)
		}
		net := netTotals(rep)
		if net.Confirms != 2 {
			t.Errorf("confirms = %d, want exactly 2 (ranks 6 and 7 fenced once each)", net.Confirms)
		}
		if elapsed > 2*chaosOpTimeout {
			t.Errorf("recovery took %v; the run leaned on the deadlock timeout instead of the detector", elapsed)
		}
	})
}

// TestResilientPartitionPlusCrash: an injected crash and a permanent
// partition in the same run — the survivors must shrink around both
// casualties and still produce a verified C.
func TestResilientPartitionPlusCrash(t *testing.T) {
	const p = 8
	a := Random(chaosM, chaosK, 35)
	b := Random(chaosK, chaosN, 36)
	want := GemmRef(a, b, false, false)
	runGuarded(t, "partition+crash", func() {
		cfg := chaosConfig(&FaultPlan{Seed: 6, Specs: []FaultSpec{
			{Kind: FaultCrash, Rank: 1, Call: 3},
			{Kind: FaultPartition, Rank: 0, Call: 2, Group: []int{7}},
		}}, 6)
		cfg.MaxRetries = 5
		cfg.Net = &ReliableOptions{RTO: 5 * time.Millisecond}
		cfg.Heartbeat = &HeartbeatOptions{
			Interval:     10 * time.Millisecond,
			SuspectAfter: 50 * time.Millisecond,
			ConfirmAfter: 250 * time.Millisecond,
		}
		c, rep, err := ResilientMultiply(a, b, p, cfg)
		if err != nil {
			t.Fatalf("partition+crash not recovered: %v", err)
		}
		if d := MaxAbsDiff(c, want); d > chaosAccuracy {
			t.Fatalf("max diff %g", d)
		}
		if net := netTotals(rep); net.Confirms == 0 {
			t.Error("isolated rank never fenced by the detector")
		}
	})
}

// TestResilientDropPlusStraggle: packet loss plus a straggler — the
// transport absorbs the loss, the detector suspects the straggler but
// must not fence it, and no shrink happens.
func TestResilientDropPlusStraggle(t *testing.T) {
	const p = 8
	a := Random(chaosM, chaosK, 37)
	b := Random(chaosK, chaosN, 38)
	want := GemmRef(a, b, false, false)
	runGuarded(t, "drop+straggle", func() {
		cfg := chaosConfig(&FaultPlan{Seed: 8, Specs: []FaultSpec{
			{Kind: FaultDrop, Rank: -1, Prob: 0.05},
			{Kind: FaultStraggle, Rank: 2, Call: 0, Delay: time.Millisecond},
		}}, 8)
		cfg.Net = &ReliableOptions{RTO: 2 * time.Millisecond}
		cfg.Heartbeat = &HeartbeatOptions{
			Interval:     5 * time.Millisecond,
			StraggleRTT:  300 * time.Microsecond,
			ConfirmAfter: 10 * time.Second,
		}
		c, rep, err := ResilientMultiply(a, b, p, cfg)
		if err != nil {
			t.Fatalf("drop+straggle run failed: %v", err)
		}
		if d := MaxAbsDiff(c, want); d > chaosAccuracy {
			t.Fatalf("max diff %g", d)
		}
		net := netTotals(rep)
		if net.Retransmits == 0 {
			t.Error("no retransmissions under 5%% drop")
		}
		if net.Suspects == 0 {
			t.Error("straggler never suspected")
		}
		if net.Confirms != 0 {
			t.Errorf("straggler fenced (%d confirms): slowness mistaken for death", net.Confirms)
		}
	})
}

// TestEngineChaosBetweenCalls extends the chaos contract to the
// persistent engine: faults landing inside — or between — two engine
// calls of the same shape must yield a verified-correct result or a
// typed error on every call, and never a stale-communicator hang. A
// crash poisons the engine (later calls fail fast with
// ErrEngineFailed); recoverable fabric faults (drops, healing
// partitions) must be absorbed by the reliable transport with every
// call still bit-correct.
func TestEngineChaosBetweenCalls(t *testing.T) {
	const m, n, k = chaosM, chaosN, chaosK
	a := Random(m, k, 1)
	b := Random(k, n, 2)
	want := GemmRef(a, b, false, false)

	cells := []struct {
		name     string
		p        int
		fault    *FaultPlan
		net      *ReliableOptions
		mustHeal bool // every call must succeed and be correct
	}{
		{"crash-early", chaosP, &FaultPlan{Seed: 3, Specs: []FaultSpec{
			{Kind: FaultCrash, Rank: 2, Call: 2},
		}}, nil, false},
		{"crash-late", chaosP, &FaultPlan{Seed: 4, Specs: []FaultSpec{
			{Kind: FaultCrash, Rank: 1, Call: 40},
		}}, nil, false},
		{"drop", chaosP, &FaultPlan{Seed: 5, Specs: []FaultSpec{
			{Kind: FaultDrop, Rank: -1, Prob: 0.05},
		}}, &ReliableOptions{RTO: 2 * time.Millisecond}, true},
		{"partition-heals", 8, &FaultPlan{Seed: 6, Specs: []FaultSpec{
			{Kind: FaultPartition, Rank: 0, Call: 1, Delay: 100 * time.Millisecond, Group: []int{6, 7}},
		}}, &ReliableOptions{RTO: 5 * time.Millisecond}, true},
	}
	for _, cell := range cells {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			runGuarded(t, cell.name, func() {
				eng, err := NewEngine(m, n, k, cell.p, Config{
					Timeout: chaosOpTimeout,
					Fault:   cell.fault,
					Net:     cell.net,
				})
				if err != nil {
					t.Fatal(err)
				}
				failed := false
				for call := 1; call <= 3; call++ {
					got, _, err := eng.MultiplyGlobal(a, b)
					if err != nil {
						if cell.mustHeal {
							t.Fatalf("call %d: recoverable fault escaped: %v", call, err)
						}
						if !errors.Is(err, ErrEngineFailed) {
							t.Fatalf("call %d: untyped failure: %v", call, err)
						}
						if errors.Is(err, mpi.ErrTimeout) {
							t.Fatalf("call %d: failure surfaced as a timeout: %v", call, err)
						}
						failed = true
						continue
					}
					if failed {
						t.Fatalf("call %d succeeded on a poisoned engine", call)
					}
					if d := MaxAbsDiff(got, want); d > chaosAccuracy {
						t.Fatalf("call %d: silently wrong result, max diff %g", call, d)
					}
				}
				_, cerr := eng.Close()
				if failed && cerr == nil {
					t.Fatal("engine died but Close reports a clean run")
				}
				if cell.name == "crash-early" || cell.name == "crash-late" {
					if !failed {
						t.Fatal("crash plan never fired across three calls")
					}
				}
			})
		})
	}
}

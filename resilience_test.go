package ca3dmm

import (
	"errors"
	"testing"
	"time"

	"repro/internal/mpi"
)

// Chaos suite for the self-healing execution path. Every test runs a
// fault-injected multiplication to completion under a hard wall-clock
// guard: the contract is that CA3DMM under chaos either returns a
// Freivalds-verified C or a typed error — never a hang and never a
// silently wrong answer.

const (
	chaosM = 45
	chaosN = 38
	chaosK = 29
	// chaosP is deliberately non-ideal (prime): the planner idles
	// ranks, and shrink-replan drops it to 6, 5, ... survivors.
	chaosP = 7

	chaosOpTimeout  = 5 * time.Second
	chaosWallClock  = 60 * time.Second
	chaosAccuracy   = 1e-9
	chaosSweepSeeds = 20
)

// runGuarded fails the test if fn does not complete within the wall
// clock — the "zero hangs" assertion.
func runGuarded(t *testing.T, name string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(chaosWallClock):
		t.Fatalf("%s: hung past %v", name, chaosWallClock)
	}
}

func chaosConfig(fault *FaultPlan, seed uint64) ResilientConfig {
	return ResilientConfig{
		MaxRetries:   4,
		Backoff:      time.Millisecond,
		VerifyTrials: 20,
		VerifySeed:   seed,
		Timeout:      chaosOpTimeout,
		Fault:        fault,
	}
}

// crashPlusCorruptPlan injects one rank crash and one payload bit-flip,
// both deterministic in seed: the acceptance scenario of the
// self-healing loop (shrink around the crash, catch the corruption via
// Freivalds, retry).
func crashPlusCorruptPlan(seed uint64, p int) *FaultPlan {
	return &FaultPlan{
		Seed: seed,
		Specs: []FaultSpec{
			{Kind: FaultCrash, Rank: int(seed) % p, Call: int64(2 + seed%5)},
			{Kind: FaultCorrupt, Rank: int(seed+3) % p, Call: int64(seed % 3), Bit: 52},
		},
	}
}

// TestResilientChaosSweep is the headline acceptance sweep: 20 seeds,
// each injecting one rank crash and one payload corruption into a
// CA3DMM run on a non-ideal process count. Every seed must produce a
// verified, correct C through shrink-and-replan.
func TestResilientChaosSweep(t *testing.T) {
	a := Random(chaosM, chaosK, 1)
	b := Random(chaosK, chaosN, 2)
	want := GemmRef(a, b, false, false)
	for seed := uint64(0); seed < chaosSweepSeeds; seed++ {
		seed := seed
		runGuarded(t, "sweep", func() {
			plan := crashPlusCorruptPlan(seed, chaosP)
			c, rep, err := ResilientMultiply(a, b, chaosP, chaosConfig(plan, seed))
			if err != nil {
				t.Errorf("seed %d: recovery failed: %v", seed, err)
				return
			}
			if d := MaxAbsDiff(c, want); d > chaosAccuracy {
				t.Errorf("seed %d: silently wrong result, max diff %g", seed, d)
			}
			injected := 0
			for i := range rep.Ranks {
				injected += len(rep.Ranks[i].Injected)
			}
			if injected == 0 {
				t.Errorf("seed %d: no fault fired; the sweep is not exercising recovery", seed)
			}
		})
	}
}

// TestChaosNoRecoveryTypedErrors is the control sweep: the same fault
// plans with recovery disabled must fail with typed errors — a rank
// failure or a verification failure — and never with a deadlock
// timeout.
func TestChaosNoRecoveryTypedErrors(t *testing.T) {
	a := Random(chaosM, chaosK, 1)
	b := Random(chaosK, chaosN, 2)
	for seed := uint64(0); seed < chaosSweepSeeds; seed++ {
		seed := seed
		runGuarded(t, "control", func() {
			plan := crashPlusCorruptPlan(seed, chaosP)
			cfg := chaosConfig(plan, seed)
			cfg.DisableRecovery = true
			_, _, err := ResilientMultiply(a, b, chaosP, cfg)
			if err == nil {
				t.Errorf("seed %d: succeeded with recovery disabled despite injected crash", seed)
				return
			}
			if !errors.Is(err, ErrRankFailed) && !errors.Is(err, ErrVerifyFailed) {
				t.Errorf("seed %d: untyped failure: %v", seed, err)
			}
			if errors.Is(err, mpi.ErrTimeout) {
				t.Errorf("seed %d: failure surfaced as a timeout: %v", seed, err)
			}
		})
	}
}

// TestResilientChaosMatrix sweeps fault classes against problem shapes:
// 1D-degenerate, cubic 3D, and non-ideal process counts.
func TestResilientChaosMatrix(t *testing.T) {
	shapes := []struct {
		name    string
		m, n, k int
		p       int
	}{
		{"1d", 240, 24, 12, 6},
		{"3d", 32, 32, 32, 8},
		{"non-ideal-p", chaosM, chaosN, chaosK, chaosP},
	}
	faults := []struct {
		name string
		plan func(seed uint64, p int) *FaultPlan
	}{
		{"crash", func(seed uint64, p int) *FaultPlan {
			return &FaultPlan{Seed: seed, Specs: []FaultSpec{
				{Kind: FaultCrash, Rank: int(seed) % p, Call: int64(1 + seed%4)},
			}}
		}},
		{"corrupt", func(seed uint64, p int) *FaultPlan {
			return &FaultPlan{Seed: seed, Specs: []FaultSpec{
				{Kind: FaultCorrupt, Rank: int(seed) % p, Call: int64(seed % 3), Bit: 52},
			}}
		}},
		{"delay", func(seed uint64, p int) *FaultPlan {
			return &FaultPlan{Seed: seed, Specs: []FaultSpec{
				{Kind: FaultDelay, Rank: -1, Prob: 0.05, Delay: 100 * time.Microsecond},
				{Kind: FaultStraggle, Rank: int(seed) % p, Call: 0, Delay: 100 * time.Microsecond},
			}}
		}},
	}
	for _, sh := range shapes {
		for _, fl := range faults {
			sh, fl := sh, fl
			t.Run(sh.name+"/"+fl.name, func(t *testing.T) {
				a := Random(sh.m, sh.k, 3)
				b := Random(sh.k, sh.n, 4)
				want := GemmRef(a, b, false, false)
				for seed := uint64(0); seed < 5; seed++ {
					seed := seed
					runGuarded(t, sh.name+"/"+fl.name, func() {
						plan := fl.plan(seed, sh.p)
						c, _, err := ResilientMultiply(a, b, sh.p, chaosConfig(plan, seed))
						if err != nil {
							t.Errorf("seed %d: %v", seed, err)
							return
						}
						if d := MaxAbsDiff(c, want); d > chaosAccuracy {
							t.Errorf("seed %d: max diff %g", seed, d)
						}
					})
				}
			})
		}
	}
}

// TestResilientCascadingCrashes: staggered crashes keep firing in
// successive epochs, so the run shrinks more than once. Regression for
// the post-shrink revocation: survivors of a shrink must share one
// revocation instance per epoch, or a second-epoch failure leaves
// peers blocked in the retry until the deadlock timer.
func TestResilientCascadingCrashes(t *testing.T) {
	const p = 8
	a := Random(chaosM, chaosK, 9)
	b := Random(chaosK, chaosN, 10)
	want := GemmRef(a, b, false, false)
	for seed := uint64(0); seed < 5; seed++ {
		seed := seed
		runGuarded(t, "cascade", func() {
			plan := &FaultPlan{Seed: seed}
			for i := 0; i < 3; i++ {
				plan.Specs = append(plan.Specs, FaultSpec{
					Kind: FaultCrash, Rank: (int(seed) + 5 + i) % p, Call: int64(2 + 3*i),
				})
			}
			cfg := chaosConfig(plan, seed)
			cfg.MaxRetries = 5
			c, _, err := ResilientMultiply(a, b, p, cfg)
			if err != nil {
				t.Errorf("seed %d: cascading recovery failed: %v", seed, err)
				return
			}
			if d := MaxAbsDiff(c, want); d > chaosAccuracy {
				t.Errorf("seed %d: max diff %g", seed, d)
			}
		})
	}
}

// TestResilientCleanRun: with no faults the resilient path must match
// the plain path on the first attempt.
func TestResilientCleanRun(t *testing.T) {
	a := Random(chaosM, chaosK, 5)
	b := Random(chaosK, chaosN, 6)
	want := GemmRef(a, b, false, false)
	runGuarded(t, "clean", func() {
		c, _, err := ResilientMultiply(a, b, chaosP, chaosConfig(nil, 0))
		if err != nil {
			t.Fatalf("clean resilient run failed: %v", err)
		}
		if d := MaxAbsDiff(c, want); d > chaosAccuracy {
			t.Fatalf("clean resilient run wrong: max diff %g", d)
		}
	})
}

// TestResilientTransposed: recovery must respect transpose flags (the
// checkpoints hold the stored matrices, not op(A)/op(B)).
func TestResilientTransposed(t *testing.T) {
	a := Random(chaosK, chaosM, 7) // stored k x m, op(A) = Aᵀ
	b := Random(chaosN, chaosK, 8) // stored n x k, op(B) = Bᵀ
	want := GemmRef(a, b, true, true)
	runGuarded(t, "transposed", func() {
		plan := &FaultPlan{Seed: 99, Specs: []FaultSpec{
			{Kind: FaultCrash, Rank: 2, Call: 3},
		}}
		cfg := chaosConfig(plan, 99)
		cfg.TransA, cfg.TransB = true, true
		c, _, err := ResilientMultiply(a, b, chaosP, cfg)
		if err != nil {
			t.Fatalf("transposed recovery failed: %v", err)
		}
		if d := MaxAbsDiff(c, want); d > chaosAccuracy {
			t.Fatalf("transposed recovery wrong: max diff %g", d)
		}
	})
}

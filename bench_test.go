package ca3dmm

// One benchmark per table and figure of the paper's evaluation
// (Section IV), plus ablation benches for the design choices called
// out in DESIGN.md. The paper-scale experiments (BenchmarkFig3 ...
// BenchmarkTable3) run the cost model over the real planners; the
// BenchmarkReal* twins execute the actual distributed algorithms on
// goroutine ranks at laptop scale. Run with:
//
//	go test -bench=. -benchmem
//
// The same rows are printed by cmd/pgemm-bench.

import (
	"io"
	"testing"

	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/gca"
	"repro/internal/grid"
	"repro/internal/mat"
	"repro/internal/sim"
)

// --- Paper-scale experiment regeneration (modeled clock) -----------

func BenchmarkFig3StrongScaling(b *testing.B) {
	mach := sim.Phoenix()
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig3(io.Discard, mach); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4HybridModes(b *testing.B) {
	mach := sim.Phoenix()
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig4(io.Discard, mach); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Breakdown(b *testing.B) {
	mach := sim.Phoenix()
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig5(io.Discard, mach); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Memory(b *testing.B) {
	mach := sim.Phoenix()
	for i := 0; i < b.N; i++ {
		if err := experiments.Table1(io.Discard, mach); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2ForcedGrids(b *testing.B) {
	mach := sim.Phoenix()
	for i := 0; i < b.N; i++ {
		if err := experiments.Table2(io.Discard, mach); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3GPU(b *testing.B) {
	mach := sim.Phoenix()
	for i := 0; i < b.N; i++ {
		if err := experiments.Table3(io.Discard, mach); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.LSweep(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Real-execution twins (goroutine ranks, measured clock) --------

// benchReal times one full distributed multiplication per iteration.
func benchReal(b *testing.B, alg Algorithm, m, n, k, p int) {
	a := Random(m, k, 1)
	bb := Random(k, n, 2)
	cfg := Config{Algorithm: alg, DualBuffer: true}
	plan, err := NewPlan(m, n, k, p, cfg)
	if err != nil {
		b.Fatal(err)
	}
	aL := ColBlocks(m, k, p)
	bL := ColBlocks(k, n, p)
	cL := ColBlocks(m, n, p)
	aLocs := dist.Scatter(a, aL)
	bLocs := dist.Scatter(bb, bL)
	b.ReportAllocs()
	b.SetBytes(int64(8 * (m*k + k*n + m*n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(p, func(c *Comm) {
			plan.Execute(c, aLocs[c.Rank()], aL, bLocs[c.Rank()], bL, cL)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealSquareCA3DMM(b *testing.B) { benchReal(b, CA3DMM, 320, 320, 320, 8) }
func BenchmarkRealSquareCOSMA(b *testing.B)  { benchReal(b, COSMA, 320, 320, 320, 8) }
func BenchmarkRealSquareCTF(b *testing.B)    { benchReal(b, C25D, 320, 320, 320, 8) }
func BenchmarkRealSquareSUMMA(b *testing.B)  { benchReal(b, SUMMA, 320, 320, 320, 8) }
func BenchmarkRealSquareCARMA(b *testing.B)  { benchReal(b, CARMA, 320, 320, 320, 8) }
func BenchmarkRealLargeKCA3DMM(b *testing.B) { benchReal(b, CA3DMM, 48, 48, 4800, 8) }
func BenchmarkRealLargeKCOSMA(b *testing.B)  { benchReal(b, COSMA, 48, 48, 4800, 8) }
func BenchmarkRealLargeMCA3DMM(b *testing.B) { benchReal(b, CA3DMM, 4800, 48, 48, 8) }
func BenchmarkRealLargeMCOSMA(b *testing.B)  { benchReal(b, COSMA, 4800, 48, 48, 8) }
func BenchmarkRealFlatCA3DMM(b *testing.B)   { benchReal(b, CA3DMM, 480, 480, 32, 8) }
func BenchmarkRealFlatCOSMA(b *testing.B)    { benchReal(b, COSMA, 480, 480, 32, 8) }

// --- Ablations (DESIGN.md section 4) --------------------------------

// BenchmarkAblationCannonVsSUMMA compares the CA3DMM inner kernels
// (Section III-E: Cannon's latency advantage).
func BenchmarkAblationCannonVsSUMMA(b *testing.B) {
	b.Run("cannon", func(b *testing.B) { benchReal(b, CA3DMM, 384, 384, 384, 16) })
	b.Run("summa", func(b *testing.B) { benchReal(b, CA3DMMSumma, 384, 384, 384, 16) })
}

// BenchmarkAblationDualBuffer measures the communication/computation
// overlap in the Cannon stage.
func BenchmarkAblationDualBuffer(b *testing.B) {
	run := func(b *testing.B, dual bool) {
		const m, n, k, p = 384, 384, 384, 16
		a := Random(m, k, 1)
		bb := Random(k, n, 2)
		plan, err := NewPlan(m, n, k, p, Config{DualBuffer: dual})
		if err != nil {
			b.Fatal(err)
		}
		aL, bL, cL := plan.NativeLayouts()
		aLocs := dist.Scatter(a, aL)
		bLocs := dist.Scatter(bb, bL)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Run(p, func(c *Comm) {
				plan.Execute(c, aLocs[c.Rank()], aL, bLocs[c.Rank()], bL, cL)
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("on", func(b *testing.B) { run(b, true) })
	b.Run("off", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationGridConstraint prices constraint (7): the CA3DMM
// grid vs the unconstrained (COSMA) grid under the cost model.
func BenchmarkAblationGridConstraint(b *testing.B) {
	mach := sim.Phoenix()
	for _, cl := range experiments.PaperClasses() {
		cl := cl
		b.Run(cl.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ca, err := sim.Predict(mach, sim.Spec{M: cl.M, N: cl.N, K: cl.K, Ranks: 2048, ThreadsPerRank: 1, Alg: sim.AlgCA3DMM})
				if err != nil {
					b.Fatal(err)
				}
				co, err := sim.Predict(mach, sim.Spec{M: cl.M, N: cl.N, K: cl.K, Ranks: 2048, ThreadsPerRank: 1, Alg: sim.AlgCOSMA})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(ca.Total/co.Total, "ca3dmm/cosma-time")
			}
		})
	}
}

// BenchmarkAblationMultiShift measures Cannon's thin-k shift
// aggregation on a large-K problem.
func BenchmarkAblationMultiShift(b *testing.B) {
	run := func(b *testing.B, ms int) {
		const m, n, k, p = 64, 64, 4096, 16
		a := Random(m, k, 1)
		bb := Random(k, n, 2)
		plan, err := NewPlan(m, n, k, p, Config{MultiShift: ms})
		if err != nil {
			b.Fatal(err)
		}
		aL, bL, cL := plan.NativeLayouts()
		aLocs := dist.Scatter(a, aL)
		bLocs := dist.Scatter(bb, bL)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Run(p, func(c *Comm) {
				plan.Execute(c, aLocs[c.Rank()], aL, bLocs[c.Rank()], bL, cL)
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, 0) })
	b.Run("x4", func(b *testing.B) { run(b, 4) })
}

// BenchmarkAblationLParam sweeps the utilization bound l of grid
// constraint (5), reporting the chosen grid's per-process surface
// (communication volume) relative to the eq. (9) lower bound.
func BenchmarkAblationLParam(b *testing.B) {
	for _, lc := range []struct {
		name string
		l    float64
	}{{"l085", 0.85}, {"l095", 0.95}, {"l099", 0.99}} {
		lc := lc
		b.Run(lc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g, err := grid.Optimize(50000, 50000, 50000, 3072, grid.Options{LowerUtil: lc.l})
				if err != nil {
					b.Fatal(err)
				}
				act := g.Procs()
				ratio := float64(grid.SurfaceCost(50000, 50000, 50000, g)) /
					(2 * float64(act) * grid.CommLowerBound(50000, 50000, 50000, act))
				b.ReportMetric(ratio, "Q-ratio")
				b.ReportMetric(float64(act), "active-procs")
			}
		})
	}
}

// BenchmarkAblationGCA measures the road not taken: GCA on the
// rectangular k-task-group grid vs CA3DMM's allgather + square-Cannon
// construction (Section III-B's "intermediate layer"), reporting each
// side's total communication volume.
func BenchmarkAblationGCA(b *testing.B) {
	const m, n, k = 64, 64, 64
	b.Run("gca-2x4", func(b *testing.B) {
		cfg := gca.Config{Pr: 2, Pc: 4, M: m, K: k, N: n}
		L := cfg.LCM()
		mb, kb, nb := m/cfg.Pr, k/L, n/cfg.Pc
		a := Random(m, k, 1)
		bb := Random(k, n, 2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := Run(8, func(c *Comm) {
				gi, gj := c.Rank()/cfg.Pc, c.Rank()%cfg.Pc
				aBlocks := map[int]*Matrix{}
				for _, l := range cfg.AHolding(gi, gj) {
					aBlocks[l] = a.View(gi*mb, l*kb, mb, kb).Clone()
				}
				bBlocks := map[int]*Matrix{}
				for _, l := range cfg.BHolding(gi, gj) {
					bBlocks[l] = bb.View(l*kb, gj*nb, kb, nb).Clone()
				}
				gca.Multiply(c, aBlocks, bBlocks, cfg)
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(rep.TotalBytesSent()), "bytes-moved")
		}
	})
	b.Run("cannon-groups", func(b *testing.B) {
		plan, err := NewPlan(m, n, k, 8, Config{Grid: Grid{Pm: 2, Pn: 4, Pk: 1}})
		if err != nil {
			b.Fatal(err)
		}
		aL, bL, cL := plan.NativeLayouts()
		a := Random(m, k, 1)
		bb := Random(k, n, 2)
		aLocs := dist.Scatter(a, aL)
		bLocs := dist.Scatter(bb, bL)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := Run(8, func(c *Comm) {
				plan.Execute(c, aLocs[c.Rank()], aL, bLocs[c.Rank()], bL, cL)
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(rep.TotalBytesSent()), "bytes-moved")
		}
	})
}

// BenchmarkAblationReplication measures the paper's Section III-C
// point: the original 3D algorithm replicates inputs with broadcasts
// (2βn under the butterfly model) where COSMA uses allgathers (βn).
// Both run from native layouts; the metric is total bytes moved.
func BenchmarkAblationReplication(b *testing.B) {
	const m, n, k, p = 96, 96, 96, 8
	run := func(b *testing.B, alg Algorithm) {
		plan, err := NewPlan(m, n, k, p, Config{Algorithm: alg})
		if err != nil {
			b.Fatal(err)
		}
		aL, bL, cL := plan.NativeLayouts()
		a := Random(m, k, 1)
		bb := Random(k, n, 2)
		aLocs := dist.Scatter(a, aL)
		bLocs := dist.Scatter(bb, bL)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := Run(p, func(c *Comm) {
				plan.Execute(c, aLocs[c.Rank()], aL, bLocs[c.Rank()], bL, cL)
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(rep.TotalBytesSent()), "bytes-moved")
		}
	}
	b.Run("3d-broadcast", func(b *testing.B) { run(b, Algo3D) })
	b.Run("cosma-allgather", func(b *testing.B) { run(b, COSMA) })
}

// BenchmarkAblationCollectives compares the runtime's allgather
// algorithms (recursive doubling vs ring) at the message sizes the
// CA3DMM replication step uses.
func BenchmarkAblationCollectives(b *testing.B) {
	const n = 1 << 14
	run := func(b *testing.B, p int) {
		payload := make([]float64, n)
		b.SetBytes(int64(8 * n * p))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Run(p, func(c *Comm) {
				c.Allgather(payload)
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("pow2-recdouble", func(b *testing.B) { run(b, 8) })
	b.Run("odd-ring", func(b *testing.B) { run(b, 7) })
}

// BenchmarkMultiplyObs prices the observability layer: "off" runs
// with no recorder (every hook is a nil-check, zero allocations),
// "on" records the full stage + comm span timeline. The acceptance
// bar is off within 5% of the seed and on within a few percent of
// off.
func BenchmarkMultiplyObs(b *testing.B) {
	run := func(b *testing.B, traced bool) {
		const m, n, k, p = 256, 256, 256, 8
		a := Random(m, k, 1)
		bb := Random(k, n, 2)
		cfg := Config{DualBuffer: true}
		if traced {
			cfg.Trace = NewTraceRecorder()
		}
		b.ReportAllocs()
		b.SetBytes(int64(8 * (m*k + k*n + m*n)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := Multiply(a, bb, p, cfg); err != nil {
				b.Fatal(err)
			}
			if traced {
				for r := 0; r < p; r++ {
					cfg.Trace.ResetRank(r)
				}
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// BenchmarkLocalGemm is the single-rank compute baseline.
func BenchmarkLocalGemm(b *testing.B) {
	a := mat.Random(384, 384, 1)
	bb := mat.Random(384, 384, 2)
	c := mat.New(384, 384)
	b.SetBytes(int64(8 * 3 * 384 * 384))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.Gemm(mat.NoTrans, mat.NoTrans, 1, a, bb, 0, c)
	}
}

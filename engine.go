package ca3dmm

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/mpi"
)

// This file implements the persistent Engine: a plan, its split
// communicators, its redistribution routes, and its buffer arena, all
// built once and reused across multiplications of the same shape. The
// one-shot Multiply facade is a NewEngine + one MultiplyGlobal + Close,
// so the engine path and the facade path are literally the same code;
// iterative callers keep the engine open and pay the setup exactly
// once.
//
// Concurrency model. NewEngine launches the simulated world
// (mpi.RunOpt) on a background goroutine; each rank builds its session
// (communicator splits, route cache, arena) and then blocks on a
// per-rank job channel. Multiply is serialized on the driver side: it
// posts one job to every rank channel, waits for all ranks to finish
// it, and collects the per-rank outputs. Close closes the channels,
// which ends every rank loop and lets the world shut down normally.
//
// Failure model. A rank that dies mid-job — injected crash, fencing,
// or a communication abort propagated from a dead peer — unwinds
// through a deferred recover that (in order) poisons the engine with
// the typed cause, marks itself finished on its current job so the
// driver never hangs, hands its job channel to a reaper goroutine that
// finishes anything posted later, and re-panics the original value so
// the runtime applies exactly the same crash semantics as the one-shot
// path. The poison-before-finish ordering guarantees that any Multiply
// issued after the failed call observes the poison and returns
// ErrEngineFailed instead of dispatching into a dead world.

// ErrEngineClosed is returned by Engine calls after Close.
var ErrEngineClosed = errors.New("ca3dmm: engine closed")

// ErrEngineFailed is returned by Engine calls after a rank failure has
// poisoned the engine. The returned error also wraps the root cause,
// so errors.Is(err, mpi.ErrRankFailed) etc. still work.
var ErrEngineFailed = errors.New("ca3dmm: engine failed")

// sessionStats is the per-rank amortization ledger.
type sessionStats struct {
	setupNs                int64
	routeHits, routeMisses int64
	arenaHits, arenaMisses int64
}

// session is the per-rank persistent execution state of one plan.
type session interface {
	execute(aLocal *Matrix, aL Layout, bLocal *Matrix, bL Layout, cDst *Matrix, cL Layout) (*Matrix, StageTimes)
	stats() sessionStats
}

// coreSession wraps the CA3DMM ExecState: cached split communicators,
// route cache, and arena.
type coreSession struct{ st *core.ExecState }

func (s coreSession) execute(aLocal *Matrix, aL Layout, bLocal *Matrix, bL Layout, cDst *Matrix, cL Layout) (*Matrix, StageTimes) {
	out, tm := s.st.Execute(aLocal, aL, bLocal, bL, cDst, cL)
	return out, StageTimes{
		Redistribute: tm.Redistribute,
		ReplicateAB:  tm.Allgather + tm.CannonComm,
		LocalCompute: tm.CannonComp,
		ReduceC:      tm.ReduceScatter,
		Total:        tm.Total,
		MatmulOnly:   tm.MatmulOnly(),
	}
}

func (s coreSession) stats() sessionStats {
	rh, rm := s.st.RouteStats()
	ah, am := s.st.ArenaStats()
	return sessionStats{
		setupNs:   s.st.SetupNs(),
		routeHits: rh, routeMisses: rm,
		arenaHits: ah, arenaMisses: am,
	}
}

// plainSession adapts the non-CA3DMM executors, which rebuild their
// communicators per call: the engine still amortizes planning and
// scatter for them, just not the communicator layer.
type plainSession struct {
	c  *Comm
	ex executor
}

func (s plainSession) execute(aLocal *Matrix, aL Layout, bLocal *Matrix, bL Layout, cDst *Matrix, cL Layout) (*Matrix, StageTimes) {
	out, st := s.ex.execute(s.c, aLocal, aL, bLocal, bL, cL)
	if cDst != nil {
		cDst.CopyFrom(out)
		return cDst, st
	}
	return out, st
}

func (s plainSession) stats() sessionStats { return sessionStats{} }

// newSession builds the calling rank's persistent state. Collective
// over c for the CA3DMM algorithms (communicator splits).
func (p *Plan) newSession(c *Comm) session {
	if ce, ok := p.exec.(coreExec); ok {
		return coreSession{ce.p.NewState(c)}
	}
	return plainSession{c: c, ex: p.exec}
}

// engineJob is one multiplication dispatched to all ranks. finish is
// idempotent per rank (CAS), so a dying rank's recover and its reaper
// can both call it without double-counting.
type engineJob struct {
	aLocs, bLocs []*Matrix
	cDsts        []*Matrix // nil, or per-rank caller-owned destinations
	aL, bL, cL   Layout

	outs     []*Matrix
	times    []StageTimes
	finished []atomic.Bool
	pending  atomic.Int32
	done     chan struct{}
}

func newEngineJob(p int, aLocs []*Matrix, aL Layout, bLocs []*Matrix, bL Layout, cDsts []*Matrix, cL Layout) *engineJob {
	j := &engineJob{
		aLocs: aLocs, bLocs: bLocs, cDsts: cDsts,
		aL: aL, bL: bL, cL: cL,
		outs:     make([]*Matrix, p),
		times:    make([]StageTimes, p),
		finished: make([]atomic.Bool, p),
		done:     make(chan struct{}),
	}
	j.pending.Store(int32(p))
	return j
}

func (j *engineJob) cDst(rank int) *Matrix {
	if j.cDsts == nil {
		return nil
	}
	return j.cDsts[rank]
}

func (j *engineJob) finish(rank int) {
	if j.finished[rank].CompareAndSwap(false, true) {
		if j.pending.Add(-1) == 0 {
			close(j.done)
		}
	}
}

// Engine is a persistent multiplication engine for one problem shape:
// the plan, the per-rank split communicators, the redistribution route
// caches, and the buffer arenas are built once and reused by every
// Multiply. Second-and-later calls therefore do zero planning, zero
// communicator construction, and zero rank-0 data movement — the
// caller's blocks go straight through the cached routes.
//
// Multiply and MultiplyGlobal are safe for concurrent use (they
// serialize internally); an Engine must be Closed to release its
// simulated world.
type Engine struct {
	plan *Plan

	jobs []chan *engineJob
	dead []atomic.Bool

	poison atomic.Pointer[error]

	statsMu sync.Mutex
	ranks   []sessionStats

	mu     sync.Mutex
	closed bool
	calls  int

	runDone chan struct{}
	rep     *mpi.Report
	runErr  error
}

// NewEngine plans C = op(A)·op(B) for op(A) m×k and op(B) k×n on p
// ranks, starts the persistent world, and builds every rank's split
// communicators, route cache, and buffer arena. The returned engine
// must be Closed.
func NewEngine(m, n, k, p int, cfg Config) (*Engine, error) {
	plan, err := NewPlan(m, n, k, p, cfg)
	if err != nil {
		return nil, err
	}
	return newEngineFromPlan(plan), nil
}

func newEngineFromPlan(plan *Plan) *Engine {
	p := plan.Procs
	e := &Engine{
		plan:    plan,
		jobs:    make([]chan *engineJob, p),
		dead:    make([]atomic.Bool, p),
		ranks:   make([]sessionStats, p),
		runDone: make(chan struct{}),
	}
	for r := range e.jobs {
		e.jobs[r] = make(chan *engineJob, 1)
	}
	cfg := plan.Cfg
	go func() {
		rep, err := mpi.RunOpt(p, mpi.Options{
			Obs:       cfg.Trace,
			Timeout:   cfg.Timeout,
			Fault:     cfg.Fault,
			Reliable:  cfg.Net,
			Heartbeat: cfg.Heartbeat,
		}, e.rankLoop)
		e.rep, e.runErr = rep, err
		close(e.runDone)
	}()
	return e
}

// rankLoop is the per-rank body of the persistent world.
func (e *Engine) rankLoop(c *Comm) {
	rank := c.Rank()
	var cur *engineJob
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		e.fail(mpi.PanicCause(rec))
		e.dead[rank].Store(true)
		if cur != nil {
			cur.finish(rank)
		}
		// Finish anything posted to this rank after its death so the
		// driver never waits on a corpse; the reaper ends when Close
		// closes the channel.
		ch := e.jobs[rank]
		go func() {
			for j := range ch {
				j.finish(rank)
			}
		}()
		panic(rec)
	}()
	ses := e.plan.newSession(c)
	for job := range e.jobs[rank] {
		cur = job
		out, st := ses.execute(job.aLocs[rank], job.aL, job.bLocs[rank], job.bL, job.cDst(rank), job.cL)
		job.outs[rank] = out
		job.times[rank] = st
		e.statsMu.Lock()
		e.ranks[rank] = ses.stats()
		e.statsMu.Unlock()
		cur = nil
		job.finish(rank)
	}
}

// fail poisons the engine with the first failure cause.
func (e *Engine) fail(err error) {
	if err == nil {
		err = errors.New("ca3dmm: rank died")
	}
	e.poison.CompareAndSwap(nil, &err)
}

// failure returns the typed poison error, or nil while healthy.
func (e *Engine) failure() error {
	if p := e.poison.Load(); p != nil {
		return fmt.Errorf("%w: %w", ErrEngineFailed, *p)
	}
	return nil
}

// Multiply runs one multiplication through the persistent state.
// aLocs[r]/bLocs[r] are rank r's blocks of the stored A and B under
// aL/bL (any layouts over the engine's p ranks); cDsts, when non-nil,
// holds caller-owned destination blocks under cL that are overwritten
// in place, making steady-state iteration allocation-free. It returns
// the per-rank C blocks under cL and the maximum per-rank stage times.
//
// After a rank failure Multiply returns an error wrapping both
// ErrEngineFailed and the root cause; it never dispatches into a dead
// world and never hangs on one.
func (e *Engine) Multiply(aLocs []*Matrix, aL Layout, bLocs []*Matrix, bL Layout, cDsts []*Matrix, cL Layout) ([]*Matrix, StageTimes, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, StageTimes{}, ErrEngineClosed
	}
	if err := e.failure(); err != nil {
		return nil, StageTimes{}, err
	}
	if err := e.validate(aLocs, aL, bLocs, bL, cDsts, cL); err != nil {
		return nil, StageTimes{}, err
	}
	job := newEngineJob(e.plan.Procs, aLocs, aL, bLocs, bL, cDsts, cL)
	for r := range e.jobs {
		e.jobs[r] <- job
	}
	<-job.done
	if err := e.failure(); err != nil {
		return nil, StageTimes{}, err
	}
	var worst StageTimes
	for _, st := range job.times {
		worst = maxStages(worst, st)
	}
	e.calls++
	return job.outs, worst, nil
}

// validate rejects malformed inputs on the driver so they surface as
// errors instead of rank panics (which would poison the engine).
func (e *Engine) validate(aLocs []*Matrix, aL Layout, bLocs []*Matrix, bL Layout, cDsts []*Matrix, cL Layout) error {
	p := e.plan.Procs
	m, n, k := e.plan.M, e.plan.N, e.plan.K
	cfg := e.plan.Cfg
	check := func(name string, l Layout, locs []*Matrix, rows, cols int, trans bool, optional bool) error {
		if l == nil {
			return fmt.Errorf("ca3dmm: engine: nil %s layout", name)
		}
		wr, wc := rows, cols
		if trans {
			wr, wc = cols, rows
		}
		if l.GlobalRows() != wr || l.GlobalCols() != wc {
			return fmt.Errorf("ca3dmm: engine: %s layout is %dx%d, want %dx%d", name, l.GlobalRows(), l.GlobalCols(), wr, wc)
		}
		if l.Procs() != p {
			return fmt.Errorf("ca3dmm: engine: %s layout spans %d ranks, engine has %d", name, l.Procs(), p)
		}
		if locs == nil && optional {
			return nil
		}
		if len(locs) != p {
			return fmt.Errorf("ca3dmm: engine: %d %s blocks for %d ranks", len(locs), name, p)
		}
		for r, blk := range locs {
			lr, lc := l.LocalShape(r)
			if blk == nil {
				return fmt.Errorf("ca3dmm: engine: rank %d %s block is nil", r, name)
			}
			if blk.Rows != lr || blk.Cols != lc {
				return fmt.Errorf("ca3dmm: engine: rank %d %s block is %dx%d, layout says %dx%d", r, name, blk.Rows, blk.Cols, lr, lc)
			}
		}
		return nil
	}
	if err := check("A", aL, aLocs, m, k, cfg.TransA, false); err != nil {
		return err
	}
	if err := check("B", bL, bLocs, k, n, cfg.TransB, false); err != nil {
		return err
	}
	return check("C", cL, cDsts, m, n, false, true)
}

// MultiplyGlobal is the convenience path for globally stored operands:
// scatter over 1D column layouts, Multiply, assemble. Unlike warm
// Multiply calls it does move data through rank 0 every call; use
// Multiply with resident blocks for iterative workloads.
func (e *Engine) MultiplyGlobal(a, b *Matrix) (*Matrix, StageTimes, error) {
	m, n := e.plan.M, e.plan.N
	cfg := e.plan.Cfg
	wr, wc := m, e.plan.K
	if cfg.TransA {
		wr, wc = wc, wr
	}
	if a.Rows != wr || a.Cols != wc {
		return nil, StageTimes{}, fmt.Errorf("ca3dmm: engine: A is %dx%d, plan wants %dx%d", a.Rows, a.Cols, wr, wc)
	}
	wr, wc = e.plan.K, n
	if cfg.TransB {
		wr, wc = wc, wr
	}
	if b.Rows != wr || b.Cols != wc {
		return nil, StageTimes{}, fmt.Errorf("ca3dmm: engine: B is %dx%d, plan wants %dx%d", b.Rows, b.Cols, wr, wc)
	}
	p := e.plan.Procs
	aL := ColBlocks(a.Rows, a.Cols, p)
	bL := ColBlocks(b.Rows, b.Cols, p)
	cL := ColBlocks(m, n, p)
	outs, st, err := e.Multiply(dist.Scatter(a, aL), aL, dist.Scatter(b, bL), bL, nil, cL)
	if err != nil {
		return nil, StageTimes{}, err
	}
	return dist.Assemble(outs, cL), st, nil
}

// Close shuts the persistent world down and returns its communication
// report and terminal error (non-nil when a rank died). Close is
// idempotent; concurrent callers all receive the same result.
func (e *Engine) Close() (*mpi.Report, error) {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		for _, ch := range e.jobs {
			close(ch)
		}
	}
	e.mu.Unlock()
	<-e.runDone
	return e.rep, e.runErr
}

// EngineStats is the cumulative amortization ledger of an engine.
type EngineStats struct {
	// Calls counts completed Multiply calls.
	Calls int
	// SetupNs is the total setup work the engine paid exactly once and
	// every later call skipped: communicator splits plus redistribution
	// route builds, summed over ranks.
	SetupNs int64
	// RouteHits/RouteMisses count redistribution route cache lookups
	// over all ranks. Misses stop growing once every (src, dst, trans)
	// triple in use has been seen.
	RouteHits, RouteMisses int64
	// ArenaHits/ArenaMisses count buffer arena lookups over all ranks.
	// Misses stop growing once the shape's buffers reach steady state.
	ArenaHits, ArenaMisses int64
}

// Stats reports the engine's cumulative amortization counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	calls := e.calls
	e.mu.Unlock()
	s := EngineStats{Calls: calls}
	e.statsMu.Lock()
	for _, r := range e.ranks {
		s.SetupNs += r.setupNs
		s.RouteHits += r.routeHits
		s.RouteMisses += r.routeMisses
		s.ArenaHits += r.arenaHits
		s.ArenaMisses += r.arenaMisses
	}
	e.statsMu.Unlock()
	return s
}

// Plan returns the engine's plan.
func (e *Engine) Plan() *Plan { return e.plan }

// NativeLayouts returns the plan's library-native distributions;
// feeding Multiply these layouts skips redistribution entirely.
func (e *Engine) NativeLayouts() (a, b, c Layout) { return e.plan.NativeLayouts() }

// GridDims returns the process grid (pm, pn, pk).
func (e *Engine) GridDims() (pm, pn, pk int) { return e.plan.GridDims() }

// engineKey identifies an engine in an EngineCache. Config is a
// comparable struct (its tuning fields are values, its attachments are
// pointers), so two configurations compare equal exactly when they
// would build interchangeable engines.
type engineKey struct {
	m, n, k, p int
	cfg        Config
}

// EngineCache is an LRU cache of live engines keyed by
// (m, n, k, p, config). Get returns the cached engine for a shape —
// emitting a plan:cache-hit observability event — or builds, caches,
// and returns a new one (plan:cache-miss), closing the least recently
// used engine when over capacity. Engines that failed or were closed
// behind the cache's back are dropped and rebuilt transparently.
//
// The zero value is not usable; use NewEngineCache.
type EngineCache struct {
	mu  sync.Mutex
	cap int
	lru *list.List // front = most recent; values are *cacheEntry
	m   map[engineKey]*list.Element

	hits, misses int64
}

type cacheEntry struct {
	key engineKey
	eng *Engine
}

// NewEngineCache creates a cache holding at most capacity live engines
// (capacity <= 0 means 4).
func NewEngineCache(capacity int) *EngineCache {
	if capacity <= 0 {
		capacity = 4
	}
	return &EngineCache{cap: capacity, lru: list.New(), m: make(map[engineKey]*list.Element)}
}

// Get returns a live engine for the shape, reusing a cached one when
// possible. The engine stays owned by the cache: do not Close it;
// Close the cache instead.
func (ec *EngineCache) Get(m, n, k, p int, cfg Config) (*Engine, error) {
	if cfg.Algorithm == "" {
		cfg.Algorithm = CA3DMM
	}
	key := engineKey{m: m, n: n, k: k, p: p, cfg: cfg}
	ec.mu.Lock()
	defer ec.mu.Unlock()
	if el, ok := ec.m[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.eng.mu.Lock()
		dead := ent.eng.closed || ent.eng.poison.Load() != nil
		ent.eng.mu.Unlock()
		if !dead {
			ec.lru.MoveToFront(el)
			ec.hits++
			cfg.Trace.Instant(0, "plan:cache-hit", fmt.Sprintf("engine %dx%dx%d p=%d", m, n, k, p))
			return ent.eng, nil
		}
		ec.lru.Remove(el)
		delete(ec.m, key)
		go ent.eng.Close()
	}
	ec.misses++
	cfg.Trace.Instant(0, "plan:cache-miss", fmt.Sprintf("engine %dx%dx%d p=%d", m, n, k, p))
	eng, err := NewEngine(m, n, k, p, cfg)
	if err != nil {
		return nil, err
	}
	ec.m[key] = ec.lru.PushFront(&cacheEntry{key: key, eng: eng})
	for ec.lru.Len() > ec.cap {
		old := ec.lru.Back()
		ent := old.Value.(*cacheEntry)
		ec.lru.Remove(old)
		delete(ec.m, ent.key)
		ent.eng.Close()
	}
	return eng, nil
}

// Stats reports the cache's cumulative hits and misses.
func (ec *EngineCache) Stats() (hits, misses int64) {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	return ec.hits, ec.misses
}

// Close shuts down every cached engine and empties the cache. The
// first rank-failure error encountered, if any, is returned.
func (ec *EngineCache) Close() error {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	var first error
	for el := ec.lru.Front(); el != nil; el = el.Next() {
		if _, err := el.Value.(*cacheEntry).eng.Close(); err != nil && first == nil {
			first = err
		}
	}
	ec.lru.Init()
	ec.m = make(map[engineKey]*list.Element)
	return first
}

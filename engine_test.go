package ca3dmm

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dist"
)

// Engine suite: the persistent plan/communicator/buffer reuse path.
// The headline contract is the issue's win condition — second-and-later
// multiplies of a shape do zero planning and zero rank-0 scatter — plus
// bit-identity with the one-shot facade and typed-error behavior after
// Close and after rank failures.

// engineEvents counts recorded instant events by name prefix.
func engineEvents(tr *TraceRecorder, prefix string) int {
	n := 0
	for _, e := range tr.Events() {
		if strings.HasPrefix(e.Name, prefix) {
			n++
		}
	}
	return n
}

// TestEngineWarmCallsAmortized pins the amortization contract on the
// default CA3DMM algorithm: after the first Multiply of a shape, later
// calls build no routes (route-miss count frozen), allocate no new
// steady-state buffers (arena-miss count frozen), never touch the
// rank-0 scatter path, and still return bit-identical results.
func TestEngineWarmCallsAmortized(t *testing.T) {
	const m, n, k, p = 45, 38, 29, 6
	a := Random(m, k, 1)
	b := Random(k, n, 2)
	want := GemmRef(a, b, false, false)

	tr := NewTraceRecorder()
	eng, err := NewEngine(m, n, k, p, Config{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	aL := ColBlocks(m, k, p)
	bL := ColBlocks(k, n, p)
	cL := ColBlocks(m, n, p)
	aLocs := ScatterBlocks(a, aL)
	bLocs := ScatterBlocks(b, bL)
	// Caller-owned destination blocks: the steady state of an iterative
	// solver, and the only configuration that can be allocation-flat
	// (outputs handed to the caller are necessarily fresh buffers).
	cDsts := make([]*Matrix, p)
	for r := 0; r < p; r++ {
		cr, cc := cL.LocalShape(r)
		cDsts[r] = NewMatrix(cr, cc)
	}
	scatterBase := dist.ScatterCalls()

	var first *Matrix
	var missesAfterCold, arenaAfterWarm int64
	for call := 1; call <= 4; call++ {
		outs, _, err := eng.Multiply(aLocs, aL, bLocs, bL, cDsts, cL)
		if err != nil {
			t.Fatalf("call %d: %v", call, err)
		}
		got := AssembleBlocks(outs, cL)
		if d := MaxAbsDiff(got, want); d > 1e-10 {
			t.Fatalf("call %d: wrong result, max diff %g", call, d)
		}
		if call == 1 {
			first = got
			missesAfterCold = eng.Stats().RouteMisses
			if missesAfterCold == 0 {
				t.Fatal("cold call built no routes; the cache is not in the path")
			}
			continue
		}
		if !bitIdentical(got, first) {
			t.Fatalf("call %d differs bitwise from call 1", call)
		}
		st := eng.Stats()
		if st.RouteMisses != missesAfterCold {
			t.Fatalf("warm call %d built routes: %d misses, want the cold call's %d",
				call, st.RouteMisses, missesAfterCold)
		}
		if st.RouteHits == 0 {
			t.Fatalf("warm call %d hit no cached routes", call)
		}
		// The second call may still grow the arena (the overlap
		// schedule uses different scratch shapes than the cold one);
		// from then on the buffer set must be closed.
		if call == 2 {
			arenaAfterWarm = st.ArenaMisses
		} else if st.ArenaMisses != arenaAfterWarm {
			t.Fatalf("call %d allocated fresh arena buffers: %d misses, want steady-state %d",
				call, st.ArenaMisses, arenaAfterWarm)
		}
	}

	if got := dist.ScatterCalls(); got != scatterBase {
		t.Fatalf("engine multiplies ran %d rank-0 scatters, want 0", got-scatterBase)
	}
	// Observability: the warm calls must record route hits and no
	// plan-cache traffic (the engine plans exactly once, in NewEngine).
	if engineEvents(tr, "redist:route-hit") == 0 {
		t.Fatal("no redist:route-hit events recorded")
	}
	if engineEvents(tr, "plan:") != 0 {
		t.Fatal("engine multiplies recorded plan events; planning is not amortized")
	}
	st := eng.Stats()
	if st.Calls != 4 || st.SetupNs <= 0 {
		t.Fatalf("stats: calls=%d setupNs=%d, want 4 calls and positive setup", st.Calls, st.SetupNs)
	}
}

// TestEngineDestinationBlocks verifies that caller-owned destination
// blocks are written in place — the zero-allocation steady state of an
// iterative solver that reuses its C blocks.
func TestEngineDestinationBlocks(t *testing.T) {
	const m, n, k, p = 33, 27, 21, 6
	a := Random(m, k, 3)
	b := Random(k, n, 4)
	want := GemmRef(a, b, false, false)

	eng, err := NewEngine(m, n, k, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	aL := ColBlocks(m, k, p)
	bL := ColBlocks(k, n, p)
	cL := Blocks2D(m, n, 3, 2, p)
	aLocs := ScatterBlocks(a, aL)
	bLocs := ScatterBlocks(b, bL)
	cDsts := make([]*Matrix, p)
	for r := 0; r < p; r++ {
		cr, cc := cL.LocalShape(r)
		cDsts[r] = NewMatrix(cr, cc)
	}
	for call := 0; call < 2; call++ {
		outs, _, err := eng.Multiply(aLocs, aL, bLocs, bL, cDsts, cL)
		if err != nil {
			t.Fatal(err)
		}
		for r := range outs {
			if outs[r] != cDsts[r] {
				t.Fatalf("rank %d: result not written into the caller's block", r)
			}
		}
		if d := MaxAbsDiff(AssembleBlocks(outs, cL), want); d > 1e-10 {
			t.Fatalf("in-place result wrong: max diff %g", d)
		}
	}
}

// TestEngineMixedLayouts drives the general redistribution layer:
// operands arrive in three different layout families and the engine
// must still match the facade bitwise.
func TestEngineMixedLayouts(t *testing.T) {
	const m, n, k, p = 40, 36, 24, 6
	a := Random(k, m, 5) // stored transposed
	b := Random(k, n, 6)
	cfg := Config{TransA: true}
	want, _, _, err := Multiply(a, b, p, cfg)
	if err != nil {
		t.Fatal(err)
	}

	eng, err := NewEngine(m, n, k, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	aL := RowBlocks(k, m, p)
	bL := BlockCyclic(k, n, 3, 2, 5, 4)
	cL := Blocks2D(m, n, 2, 3, p)
	aLocs := ScatterBlocks(a, aL)
	bLocs := ScatterBlocks(b, bL)
	for call := 0; call < 2; call++ {
		outs, _, err := eng.Multiply(aLocs, aL, bLocs, bL, nil, cL)
		if err != nil {
			t.Fatal(err)
		}
		if !bitIdentical(AssembleBlocks(outs, cL), want) {
			t.Fatalf("call %d: mixed-layout engine result differs bitwise from facade", call)
		}
	}
}

// TestEngineClosedAndValidation: typed error after Close, idempotent
// Close, and driver-side validation errors that do not poison the
// engine.
func TestEngineClosedAndValidation(t *testing.T) {
	const m, n, k, p = 24, 20, 16, 4
	a := Random(m, k, 7)
	b := Random(k, n, 8)
	eng, err := NewEngine(m, n, k, p, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Malformed input is an error, not a poison pill.
	wrong := ColBlocks(m+1, k, p)
	if _, _, err := eng.Multiply(ScatterBlocks(Random(m+1, k, 9), wrong), wrong,
		ScatterBlocks(b, ColBlocks(k, n, p)), ColBlocks(k, n, p), nil, ColBlocks(m, n, p)); err == nil {
		t.Fatal("mis-shaped A layout accepted")
	}
	if got, _, err := eng.MultiplyGlobal(a, b); err != nil {
		t.Fatalf("engine unusable after validation error: %v", err)
	} else if d := MaxAbsDiff(got, GemmRef(a, b, false, false)); d > 1e-10 {
		t.Fatalf("wrong result after validation error: %g", d)
	}

	if _, err := eng.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, _, err := eng.MultiplyGlobal(a, b); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("multiply after close: %v, want ErrEngineClosed", err)
	}
	if _, err := eng.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestEngineCacheLRU: repeated shapes hit, capacity evicts the oldest
// engine (closing it), and failed lookups rebuild transparently.
func TestEngineCacheLRU(t *testing.T) {
	tr := NewTraceRecorder()
	cache := NewEngineCache(1)
	defer cache.Close()

	cfg := Config{Trace: tr}
	e1, err := cache.Get(24, 20, 16, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e1again, err := cache.Get(24, 20, 16, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e1again != e1 {
		t.Fatal("same shape did not hit the cache")
	}
	if h, m := cache.Stats(); h != 1 || m != 1 {
		t.Fatalf("cache stats %d/%d, want 1 hit / 1 miss", h, m)
	}
	if engineEvents(tr, "plan:cache-hit") != 1 || engineEvents(tr, "plan:cache-miss") != 1 {
		t.Fatal("cache did not record plan:cache-hit/miss events")
	}

	// Capacity 1: a second shape evicts and closes the first engine.
	if _, err := cache.Get(30, 30, 30, 4, cfg); err != nil {
		t.Fatal(err)
	}
	a := Random(24, 16, 1)
	b := Random(16, 20, 2)
	if _, _, err := e1.MultiplyGlobal(a, b); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("evicted engine still open: %v", err)
	}
}
